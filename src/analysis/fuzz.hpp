// Scenario fuzzer: randomized short missions checked by three oracles.
//
//   1. Differential — the production configuration (WorldUpdateMode::Fast +
//      CsaPlanner) must match the executable specification
//      (WorldUpdateMode::Reference + NaiveCsaPlanner) on the full trace,
//      detector verdicts, and fault tallies, within the world-equivalence
//      tolerances.
//   2. Invariants — energy conservation (delivered <= radiated, trace
//      radiation reconciles with the depot ledger), batteries inside
//      [0, capacity], traces in nondecreasing event order, no activity on
//      dead nodes, sessions per node non-overlapping.
//   3. Liveness — the event kernel executes a bounded number of events, and
//      (when escalation faults cannot drop reports) every sufficiently old
//      request is answered by a session, an escalation, or a death: a
//      permanently broken charger must not starve the protocol.
//
// Each trial is a ScenarioConfig override set (the same `key = value` pairs
// the INI loader accepts, plus the pseudo-key `mode`), so a failing trial is
// reproducible from one printed line: `wrsn_cli --repro '<line>'` or
// `scenario_fuzzer --repro '<line>'` reruns exactly that mission.  Overrides
// are generated as *strings* and parsed by the same config path in both the
// campaign and the replay, so repro lines are exact by construction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/scenario.hpp"
#include "core/planners.hpp"

namespace wrsn::analysis {

/// One trial's scenario description: INI override pairs plus the pseudo-key
/// "mode" ("attack" | "benign").  Everything else goes through apply_config.
using FuzzOverrides = std::map<std::string, std::string>;

/// Outcome of one fuzz trial.
struct FuzzVerdict {
  /// Human-readable oracle violations; empty means all oracles passed.
  std::vector<std::string> failures;
  /// FNV-1a fold of the production run's trace, detector verdicts, and
  /// fault tallies.  Bit-identical across thread counts (the runner's
  /// guarantee), so campaign digests pin cross-thread determinism.
  std::uint64_t digest = 0;

  bool ok() const { return failures.empty(); }
};

/// Aggregate outcome of a fuzz campaign.
struct FuzzReport {
  std::size_t trials = 0;
  std::size_t failed_trials = 0;
  /// One repro line per failing trial, submission order, capped at the
  /// campaign's max_failures.
  std::vector<std::string> repro_lines;
  /// First oracle violation of the matching repro line (same indexing).
  std::vector<std::string> first_failures;
  /// Submission-order fold of every trial digest.
  std::uint64_t digest = 0;

  bool ok() const { return failed_trials == 0; }
};

/// Deliberately broken planner for the fuzzer's self-test: delegates to
/// CsaPlanner, then swaps the first two visits of the plan.  The differential
/// oracle must catch the resulting trace divergence — a campaign run with
/// `inject_divergence` that reports zero failures means the oracles are dead.
class BuggyPlanner final : public csa::Planner {
 public:
  std::string_view name() const override { return "CSA-buggy-selftest"; }
  csa::Plan plan(const csa::TideInstance& instance, Rng& rng) const override;

 private:
  csa::CsaPlanner inner_;
};

/// Draws one randomized trial description: 16-49 nodes at calibrated
/// density, 0.25-1 day horizon, attack or benign service, and a sampled
/// fault mix (MC breakdowns incl. permanent, node bursts, phase noise,
/// escalation tampering, battery drift).  Pure function of `rng`.
FuzzOverrides generate_fuzz_overrides(Rng& rng);

/// Runs one trial through all three oracles.  `inject_divergence` swaps the
/// production planner for BuggyPlanner (attack mode only) to prove the
/// differential oracle bites.
FuzzVerdict run_fuzz_trial(const FuzzOverrides& overrides,
                           bool inject_divergence = false);

/// FNV-1a fold of a mission result: the full trace (requests, sessions,
/// deaths, escalations), detector verdicts, key-target set, fault tallies,
/// and the liveness counters.  This is THE result digest of the repo — the
/// fuzzer's campaign digests, the mission service's response digests, and
/// the service-vs-direct differential all use it, so a service response is
/// bit-identical to a standalone run iff the digests match.
std::uint64_t digest_result(const ScenarioResult& result);

/// Splits a fuzz override set into the mission config and mode, exactly as
/// run_fuzz_trial does: the pseudo-key "mode" (default attack) selects the
/// service, everything else goes through apply_config over
/// default_scenario().  Throws ConfigError on unknown keys or a bad mode.
/// Run the result with run_mission for the standalone-equivalent mission.
std::pair<ScenarioConfig, ChargerMode> resolve_overrides(
    const FuzzOverrides& overrides);

/// Serializes overrides as a `k=v;k=v` repro line (sorted keys).
std::string format_repro(const FuzzOverrides& overrides);

/// Parses a repro line back into overrides.  Throws ConfigError on
/// malformed input.
FuzzOverrides parse_repro(const std::string& line);

/// Runs `trials` generated trials through the deterministic parallel runner
/// (`threads` = 0 picks WRSN_THREADS / hardware concurrency).  Trial
/// generation is sequential from `seed`, so the campaign — including its
/// digest — is bit-identical at any thread count.
FuzzReport run_fuzz_campaign(std::size_t trials, std::uint64_t seed,
                             std::size_t threads = 0,
                             bool inject_divergence = false,
                             std::size_t max_failures = 16);

}  // namespace wrsn::analysis
