// Attacker-policy x defender-policy tournaments (DESIGN.md §15).
//
// A tournament runs a round-robin grid: every attacker spoof-scheduling
// policy against every defender threshold policy, `attack_trials` seeded
// missions per cell, plus `benign_trials` honest missions per defender to
// price its false-positive rate.  All missions flatten into ONE
// runner::run_trials call — per-trial Rng streams are forked by flat index
// from the tournament seed, and every aggregate folds results in submission
// order, so the whole report (including its digest) is bit-identical at any
// WRSN_THREADS.
//
// Cell metrics chart the stealth/damage frontier of the paper's central
// claim: damage = mean key-node exhaustion fraction, stealth = (detection
// rate, mean time-to-first-true-positive on detected attack runs, benign
// FP rate of the defender column).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "policy/policy.hpp"
#include "runner/runner.hpp"

namespace wrsn::analysis {

struct TournamentEntrant {
  std::string label;
  policy::AttackPolicyParams params;
};

struct TournamentDefender {
  std::string label;
  policy::DefenderPolicyParams params;
};

struct TournamentConfig {
  /// Scenario template; each trial overwrites `policy.*` and `seed`.
  ScenarioConfig base;
  std::vector<TournamentEntrant> attackers;
  std::vector<TournamentDefender> defenders;
  /// Attack missions per (attacker, defender) cell.
  std::size_t attack_trials = 4;
  /// Benign missions per defender (the FP-rate column).
  std::size_t benign_trials = 4;
  std::size_t threads = 0;  ///< 0 = WRSN_THREADS / hardware
  std::uint64_t seed = 1;
};

/// The built-in 3-attacker x 3-defender grid: static / eps-greedy / UCB
/// attackers vs. static / adaptive / adaptive-tight (quantile 2, half
/// window) defenders, over `base`.
TournamentConfig default_tournament(ScenarioConfig base);

struct TournamentCell {
  std::string attacker;
  std::string defender;
  std::size_t attack_trials = 0;
  /// Damage: mean key-node exhaustion fraction over the cell's attack runs.
  double damage = 0.0;
  /// Mean exhaustion fraction reached before first detection (= damage on
  /// undetected runs).
  double undetected_damage = 0.0;
  /// Fraction of attack runs the defender detected at all.
  double detection_rate = 0.0;
  /// Mean time-to-first-true-positive over DETECTED attack runs [s];
  /// horizon when the cell had none.
  double mean_time_to_detection = 0.0;
  /// Benign FP rate of this defender (shared across its column).
  double fp_rate = 0.0;
  /// Fold of the cell's per-trial result digests, submission order.
  std::uint64_t digest = 0;
};

struct TournamentReport {
  std::vector<TournamentCell> cells;  ///< attacker-major grid order
  std::size_t trials = 0;             ///< attack + benign missions run
  /// Fold of every trial digest in submission order — the quantity the
  /// WRSN_THREADS=1/2/8 determinism test pins.
  std::uint64_t digest = 0;
  runner::RunStats stats;
};

/// Renders the `wrsn-tournament-v1` JSON document (bench/metrics_schema.json).
/// Digests serialize as strings: JSON numbers cannot hold 64-bit hashes.
std::string tournament_json(const TournamentConfig& config,
                            const TournamentReport& report);

/// Round-robin tournament on the PR 1 runner.
class TournamentRunner {
 public:
  explicit TournamentRunner(TournamentConfig config);
  TournamentReport run() const;

  const TournamentConfig& config() const { return config_; }

 private:
  TournamentConfig config_;
};

}  // namespace wrsn::analysis
