#include "analysis/tournament.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "analysis/fuzz.hpp"
#include "common/check.hpp"
#include "common/fnv.hpp"

namespace wrsn::analysis {
namespace {

/// One flattened mission of the tournament grid.
struct TrialSpec {
  ScenarioConfig config;
  ChargerMode mode = ChargerMode::Attack;
  /// Cell index for attack trials; defender index for benign trials.
  std::size_t cell = 0;
  std::size_t defender = 0;
  bool benign = false;
};

struct TrialOutcome {
  std::uint64_t digest = 0;
  double exhaustion = 0.0;
  double undetected_exhaustion = 0.0;
  bool detected = false;
  double detection_time = 0.0;
};

}  // namespace

TournamentConfig default_tournament(ScenarioConfig base) {
  TournamentConfig config;
  config.base = std::move(base);

  policy::AttackPolicyParams attacker;
  config.attackers.push_back({"static", attacker});
  attacker.kind = policy::AttackPolicyKind::EpsilonGreedy;
  config.attackers.push_back({"eps-greedy", attacker});
  attacker.kind = policy::AttackPolicyKind::Ucb;
  config.attackers.push_back({"ucb", attacker});

  policy::DefenderPolicyParams defender;
  config.defenders.push_back({"static", defender});
  defender.kind = policy::DefenderPolicyKind::Adaptive;
  config.defenders.push_back({"adaptive", defender});
  defender.quantile = 2.0;
  defender.window = defender.window / 2.0;
  config.defenders.push_back({"adaptive-tight", defender});
  return config;
}

TournamentRunner::TournamentRunner(TournamentConfig config)
    : config_(std::move(config)) {
  WRSN_REQUIRE(!config_.attackers.empty(), "tournament needs attackers");
  WRSN_REQUIRE(!config_.defenders.empty(), "tournament needs defenders");
  WRSN_REQUIRE(config_.attack_trials > 0, "tournament needs attack trials");
  for (const TournamentEntrant& a : config_.attackers) a.params.validate();
  for (const TournamentDefender& d : config_.defenders) d.params.validate();
}

TournamentReport TournamentRunner::run() const {
  const std::size_t attackers = config_.attackers.size();
  const std::size_t defenders = config_.defenders.size();
  const std::size_t cells = attackers * defenders;

  // Flatten the grid in a fixed order — attack cells attacker-major, then
  // the per-defender benign columns — so trial index, and with it every
  // forked stream, is a pure function of the tournament configuration.
  std::vector<TrialSpec> specs;
  specs.reserve(cells * config_.attack_trials +
                defenders * config_.benign_trials);
  for (std::size_t a = 0; a < attackers; ++a) {
    for (std::size_t d = 0; d < defenders; ++d) {
      for (std::size_t t = 0; t < config_.attack_trials; ++t) {
        TrialSpec spec;
        spec.config = config_.base;
        spec.config.policy.attacker = config_.attackers[a].params;
        spec.config.policy.defender = config_.defenders[d].params;
        spec.mode = ChargerMode::Attack;
        spec.cell = a * defenders + d;
        spec.defender = d;
        specs.push_back(std::move(spec));
      }
    }
  }
  for (std::size_t d = 0; d < defenders; ++d) {
    for (std::size_t t = 0; t < config_.benign_trials; ++t) {
      TrialSpec spec;
      spec.config = config_.base;
      spec.config.policy.defender = config_.defenders[d].params;
      spec.mode = ChargerMode::Benign;
      spec.defender = d;
      spec.benign = true;
      specs.push_back(std::move(spec));
    }
  }

  TournamentReport report;
  runner::TrialOptions options;
  options.threads = config_.threads;
  options.seed = config_.seed;
  options.label = "tournament";
  const std::vector<TrialOutcome> outcomes = runner::run_trials(
      std::span<const TrialSpec>(specs),
      [](const TrialSpec& spec, Rng& rng) {
        ScenarioConfig cfg = spec.config;
        cfg.seed = std::uint64_t(rng.uniform_int(1, 1'000'000'000));
        const ScenarioResult result = run_mission(cfg, spec.mode);
        TrialOutcome outcome;
        outcome.digest = digest_result(result);
        outcome.exhaustion = result.report.exhaustion_ratio;
        outcome.undetected_exhaustion =
            result.report.undetected_exhaustion_ratio;
        outcome.detected = result.report.detected;
        outcome.detection_time = result.report.detection_time;
        return outcome;
      },
      options, &report.stats);

  report.trials = outcomes.size();
  report.cells.resize(cells);
  std::vector<std::size_t> benign_runs(defenders, 0);
  std::vector<std::size_t> benign_fps(defenders, 0);
  std::vector<std::size_t> detected_counts(cells, 0);
  std::vector<double> detection_time_sums(cells, 0.0);
  std::vector<Fnv> cell_folds(cells);
  Fnv fold;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TrialSpec& spec = specs[i];
    const TrialOutcome& outcome = outcomes[i];
    fold.mix(outcome.digest);
    if (spec.benign) {
      ++benign_runs[spec.defender];
      if (outcome.detected) ++benign_fps[spec.defender];
      continue;
    }
    TournamentCell& cell = report.cells[spec.cell];
    ++cell.attack_trials;
    cell.damage += outcome.exhaustion;
    cell.undetected_damage += outcome.undetected_exhaustion;
    if (outcome.detected) {
      ++detected_counts[spec.cell];
      detection_time_sums[spec.cell] += outcome.detection_time;
    }
    cell_folds[spec.cell].mix(outcome.digest);
  }
  report.digest = fold.hash();

  for (std::size_t a = 0; a < attackers; ++a) {
    for (std::size_t d = 0; d < defenders; ++d) {
      const std::size_t index = a * defenders + d;
      TournamentCell& cell = report.cells[index];
      cell.attacker = config_.attackers[a].label;
      cell.defender = config_.defenders[d].label;
      const double n = double(cell.attack_trials);
      cell.damage /= n;
      cell.undetected_damage /= n;
      cell.detection_rate = double(detected_counts[index]) / n;
      cell.mean_time_to_detection =
          detected_counts[index] > 0
              ? detection_time_sums[index] / double(detected_counts[index])
              : config_.base.horizon;
      cell.fp_rate = benign_runs[d] > 0
                         ? double(benign_fps[d]) / double(benign_runs[d])
                         : 0.0;
      cell.digest = cell_folds[index].hash();
    }
  }
  return report;
}

std::string tournament_json(const TournamentConfig& config,
                            const TournamentReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"wrsn-tournament-v1\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"grid\": {\n"
                "    \"attackers\": %zu,\n"
                "    \"defenders\": %zu,\n"
                "    \"attack_trials\": %zu,\n"
                "    \"benign_trials\": %zu,\n"
                "    \"seed\": %llu\n"
                "  },\n",
                config.attackers.size(), config.defenders.size(),
                config.attack_trials, config.benign_trials,
                (unsigned long long)config.seed);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"digest\": \"%llu\",\n",
                (unsigned long long)report.digest);
  out += buf;
  out += "  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const TournamentCell& c = report.cells[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\n"
                  "      \"attacker\": \"%s\",\n"
                  "      \"defender\": \"%s\",\n"
                  "      \"attack_trials\": %zu,\n"
                  "      \"damage\": %.6f,\n"
                  "      \"undetected_damage\": %.6f,\n"
                  "      \"detection_rate\": %.6f,\n"
                  "      \"mean_time_to_detection_s\": %.3f,\n"
                  "      \"fp_rate\": %.6f,\n"
                  "      \"digest\": \"%llu\"\n"
                  "    }%s\n",
                  c.attacker.c_str(), c.defender.c_str(), c.attack_trials,
                  c.damage, c.undetected_damage, c.detection_rate,
                  c.mean_time_to_detection, c.fp_rate,
                  (unsigned long long)c.digest,
                  i + 1 == report.cells.size() ? "" : ",");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace wrsn::analysis
