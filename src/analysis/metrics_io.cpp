#include "analysis/metrics_io.hpp"

#include <cstdlib>
#include <fstream>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace wrsn::analysis {

namespace {

Table rows_table(const obs::MetricRegistry& registry, bool timing,
                 const std::string& title) {
  Table table(title);
  table.headers({"metric", "kind", "value", "count", "mean", "min", "max"});
  for (const obs::MetricRow& row : registry.rows()) {
    if (row.timing != timing) continue;
    std::string name(row.name);
    if (row.timing) name += " (timing)";
    if (row.hist != nullptr) {
      const obs::Histogram& h = *row.hist;
      const double mean = h.count() > 0 ? h.sum() / double(h.count()) : 0.0;
      table.row({name, "histogram", fmt(h.sum(), 3),
                 std::to_string(h.count()), fmt(mean, 3), fmt(h.min(), 3),
                 fmt(h.max(), 3)});
    } else {
      const char* kind =
          row.kind == obs::MetricKind::kGaugeMax ? "gauge-max" : "counter";
      table.row({name, kind, fmt(row.value, 3), "-", "-", "-", "-"});
    }
  }
  return table;
}

}  // namespace

Table metrics_table(const obs::MetricRegistry& registry,
                    const std::string& title) {
  return rows_table(registry, /*timing=*/false, title);
}

Table timing_metrics_table(const obs::MetricRegistry& registry,
                           const std::string& title) {
  return rows_table(registry, /*timing=*/true, title);
}

void print_metrics_tables(const obs::MetricRegistry& registry,
                          std::ostream& os) {
  metrics_table(registry).print(os);
  timing_metrics_table(registry).print(os);
}

void write_metrics_json(const obs::MetricRegistry& registry,
                        const std::string& path) {
  std::ofstream out(path);
  WRSN_REQUIRE(out.good(), "cannot open metrics JSON output file");
  out << obs::to_json(registry);
  WRSN_REQUIRE(out.good(), "failed writing metrics JSON");
}

bool maybe_export_metrics(const obs::MetricRegistry& registry,
                          std::ostream& log) {
  const char* path = std::getenv("WRSN_METRICS_JSON");
  if (path == nullptr || *path == '\0') return false;
  write_metrics_json(registry, path);
  log << "metrics JSON written to " << path << "\n";
  return true;
}

}  // namespace wrsn::analysis
