// Table rendering and file export for obs::MetricRegistry.
//
// The table and the JSON export are generated from the same registry rows,
// so a bench's printed metrics and its `BENCH_*.json` artifact always agree
// value for value (the CI smoke job diffs the two).
#pragma once

#include <ostream>
#include <string>

#include "analysis/table.hpp"
#include "obs/metrics.hpp"

namespace wrsn::analysis {

/// One row per non-timing metric: scalars show their value; histograms
/// show count, sum, mean, min, max.  Deterministic by construction — the
/// values AND the column widths depend only on simulated work, so the
/// printed block is safe to diff byte-for-byte across thread counts.
Table metrics_table(const obs::MetricRegistry& registry,
                    const std::string& title = "Metrics");

/// Wall-clock timer metrics only, suffixed "(timing)", as a separately
/// aligned table: keeping them out of `metrics_table` is what keeps that
/// table's column widths run-independent.
Table timing_metrics_table(const obs::MetricRegistry& registry,
                           const std::string& title = "Timing metrics");

/// Prints the deterministic table followed by the timing table (the layout
/// benches and the CLI emit; bench/validate_metrics.py parses both).
void print_metrics_tables(const obs::MetricRegistry& registry,
                          std::ostream& os);

/// Writes the `wrsn-metrics-v1` JSON export to `path`.
void write_metrics_json(const obs::MetricRegistry& registry,
                        const std::string& path);

/// When the `WRSN_METRICS_JSON` environment variable names a path, writes
/// the JSON export there (logging the destination to `log`) and returns
/// true.  Benches call this after their run so CI and scripts can collect
/// metrics without bench-specific flags.
bool maybe_export_metrics(const obs::MetricRegistry& registry,
                          std::ostream& log);

}  // namespace wrsn::analysis
