#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace wrsn::analysis {

Summary summarize(std::span<const double> values) {
  Summary summary;
  summary.count = values.size();
  if (values.empty()) return summary;

  double sum = 0.0;
  summary.min = values.front();
  summary.max = values.front();
  for (const double v : values) {
    sum += v;
    summary.min = std::min(summary.min, v);
    summary.max = std::max(summary.max, v);
  }
  summary.mean = sum / double(values.size());

  if (values.size() > 1) {
    double ss = 0.0;
    for (const double v : values) {
      const double d = v - summary.mean;
      ss += d * d;
    }
    summary.stddev = std::sqrt(ss / double(values.size() - 1));
    summary.ci95 = 1.96 * summary.stddev / std::sqrt(double(values.size()));
  }
  return summary;
}

double quantile(std::span<const double> values, double q) {
  WRSN_REQUIRE(!values.empty(), "quantile of empty sample");
  WRSN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * double(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - double(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace wrsn::analysis
