#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace wrsn::analysis {

double t_critical_95(std::size_t dof) {
  // Two-sided 95 % Student-t critical values.  Benches aggregate 6-10 seeds,
  // where the normal 1.96 understates the interval by 15-30 %; beyond the
  // table the t distribution is within ~2 % of normal.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  constexpr std::size_t kTableSize = sizeof(kTable) / sizeof(kTable[0]);
  if (dof == 0) return 0.0;
  if (dof <= kTableSize) return kTable[dof - 1];
  return 1.96;
}

Summary summarize(std::span<const double> values) {
  Summary summary;
  summary.count = values.size();
  if (values.empty()) return summary;

  double sum = 0.0;
  summary.min = values.front();
  summary.max = values.front();
  for (const double v : values) {
    sum += v;
    summary.min = std::min(summary.min, v);
    summary.max = std::max(summary.max, v);
  }
  summary.mean = sum / double(values.size());

  if (values.size() > 1) {
    double ss = 0.0;
    for (const double v : values) {
      const double d = v - summary.mean;
      ss += d * d;
    }
    summary.stddev = std::sqrt(ss / double(values.size() - 1));
    summary.ci95 = t_critical_95(values.size() - 1) * summary.stddev /
                   std::sqrt(double(values.size()));
  }
  return summary;
}

namespace {

/// Linear-interpolation quantile over an already-sorted sample.
double quantile_from_sorted(std::span<const double> sorted, double q) {
  WRSN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of [0, 1]");
  const double pos = q * double(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - double(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double quantile(std::span<const double> values, double q) {
  WRSN_REQUIRE(!values.empty(), "quantile of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_from_sorted(sorted, q);
}

std::vector<double> sorted_quantiles(std::span<const double> values,
                                     std::initializer_list<double> qs) {
  WRSN_REQUIRE(!values.empty(), "quantile of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(quantile_from_sorted(sorted, q));
  return out;
}

}  // namespace wrsn::analysis
