#include "analysis/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <unordered_map>
#include <utility>

#include "analysis/config_io.hpp"
#include "common/check.hpp"
#include "common/fnv.hpp"
#include "core/reference_planner.hpp"
#include "runner/runner.hpp"

namespace wrsn::analysis {
namespace {

// World-equivalence tolerances (tests/world_equivalence_test.cpp): Reference
// resyncs every node at every death, folding floating-point error slightly
// differently from Fast, so bitwise-equal times are unattainable by design.
constexpr Seconds kTimeTol = 1e-5;
constexpr Joules kEnergyTol = 1e-3;
constexpr double kRfTol = 1e-9;
/// Detector verdict times derive from trace times; give them headroom.
constexpr Seconds kDetectTimeTol = 1e-3;
/// Cap on recorded violations per trial — one broken invariant tends to
/// cascade, and the repro line is what matters.
constexpr std::size_t kMaxFailuresPerTrial = 12;

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string fmt(std::size_t value) { return std::to_string(value); }

void fail(std::vector<std::string>& failures, std::string message) {
  if (failures.size() < kMaxFailuresPerTrial) {
    failures.push_back(std::move(message));
  }
}

// ---------------------------------------------------------------------------
// Oracle 1: differential — production (Fast + CsaPlanner) vs executable
// specification (Reference + NaiveCsaPlanner).
// ---------------------------------------------------------------------------

bool near(double a, double b, double tol) { return std::abs(a - b) <= tol; }

void check_differential(const ScenarioResult& fast, const ScenarioResult& ref,
                        std::vector<std::string>& failures) {
  const auto diff = [&](const std::string& what) {
    fail(failures, "differential: " + what);
  };

  const sim::Trace& ft = fast.trace;
  const sim::Trace& rt = ref.trace;

  if (ft.requests.size() != rt.requests.size()) {
    diff("request count " + fmt(ft.requests.size()) + " != " +
         fmt(rt.requests.size()));
  } else {
    for (std::size_t i = 0; i < rt.requests.size(); ++i) {
      const auto& f = ft.requests[i];
      const auto& r = rt.requests[i];
      if (f.node != r.node || f.emergency != r.emergency ||
          !near(f.time, r.time, kTimeTol) ||
          !near(f.level_at_request, r.level_at_request, kEnergyTol)) {
        diff("request #" + fmt(i) + " node " + fmt(std::size_t(f.node)) +
             " vs " + fmt(std::size_t(r.node)) + " t " + fmt(f.time) +
             " vs " + fmt(r.time));
        break;
      }
    }
  }

  if (ft.sessions.size() != rt.sessions.size()) {
    diff("session count " + fmt(ft.sessions.size()) + " != " +
         fmt(rt.sessions.size()));
  } else {
    for (std::size_t i = 0; i < rt.sessions.size(); ++i) {
      const auto& f = ft.sessions[i];
      const auto& r = rt.sessions[i];
      if (f.node != r.node || f.kind != r.kind ||
          !near(f.start, r.start, kTimeTol) || !near(f.end, r.end, kTimeTol) ||
          !near(f.expected_gain, r.expected_gain, kEnergyTol) ||
          !near(f.delivered, r.delivered, kEnergyTol) ||
          !near(f.rf_observed, r.rf_observed, kRfTol)) {
        diff("session #" + fmt(i) + " node " + fmt(std::size_t(f.node)) +
             " vs " + fmt(std::size_t(r.node)) + " start " + fmt(f.start) +
             " vs " + fmt(r.start));
        break;
      }
    }
  }

  if (ft.deaths.size() != rt.deaths.size()) {
    diff("death count " + fmt(ft.deaths.size()) + " != " +
         fmt(rt.deaths.size()));
  } else {
    for (std::size_t i = 0; i < rt.deaths.size(); ++i) {
      const auto& f = ft.deaths[i];
      const auto& r = rt.deaths[i];
      if (f.node != r.node ||
          f.request_outstanding != r.request_outstanding ||
          !near(f.time, r.time, kTimeTol)) {
        diff("death #" + fmt(i) + " node " + fmt(std::size_t(f.node)) +
             " vs " + fmt(std::size_t(r.node)) + " t " + fmt(f.time) +
             " vs " + fmt(r.time));
        break;
      }
    }
  }

  if (ft.escalations.size() != rt.escalations.size()) {
    diff("escalation count " + fmt(ft.escalations.size()) + " != " +
         fmt(rt.escalations.size()));
  } else {
    for (std::size_t i = 0; i < rt.escalations.size(); ++i) {
      const auto& f = ft.escalations[i];
      const auto& r = rt.escalations[i];
      if (f.node != r.node || !near(f.time, r.time, kTimeTol)) {
        diff("escalation #" + fmt(i) + " node " + fmt(std::size_t(f.node)) +
             " vs " + fmt(std::size_t(r.node)));
        break;
      }
    }
  }

  if (fast.keys != ref.keys) diff("key-target sets differ");
  if (fast.plans_computed != ref.plans_computed) {
    diff("plans_computed " + fmt(fast.plans_computed) + " != " +
         fmt(ref.plans_computed));
  }
  if (fast.alive_at_end != ref.alive_at_end) {
    diff("alive_at_end " + fmt(fast.alive_at_end) + " != " +
         fmt(ref.alive_at_end));
  }
  if (fast.sink_connected_at_end != ref.sink_connected_at_end) {
    diff("sink_connected_at_end " + fmt(fast.sink_connected_at_end) +
         " != " + fmt(ref.sink_connected_at_end));
  }

  const fault::FaultStats& ff = fast.fault_stats;
  const fault::FaultStats& rf = ref.fault_stats;
  if (ff.mc_breakdowns != rf.mc_breakdowns || ff.mc_repairs != rf.mc_repairs ||
      ff.node_burst_kills != rf.node_burst_kills ||
      ff.phase_noise_windows != rf.phase_noise_windows ||
      ff.escalations_dropped != rf.escalations_dropped ||
      ff.escalations_delayed != rf.escalations_delayed ||
      ff.drift_nodes != rf.drift_nodes || ff.absorbed != rf.absorbed ||
      ff.mc_handoffs != rf.mc_handoffs) {
    diff("fault tallies differ (injected " + fmt(ff.injected_total()) +
         " vs " + fmt(rf.injected_total()) + ")");
  }

  if (fast.detections.size() != ref.detections.size()) {
    diff("detector count differs");
  } else {
    for (std::size_t i = 0; i < ref.detections.size(); ++i) {
      const auto& f = fast.detections[i];
      const auto& r = ref.detections[i];
      if (f.detector != r.detector ||
          f.detection.has_value() != r.detection.has_value() ||
          (f.detection.has_value() &&
           (f.detection->node != r.detection->node ||
            !near(f.detection->time, r.detection->time, kDetectTimeTol)))) {
        diff("detector '" + f.detector + "' verdict differs");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Oracle 2: invariants on a single run's trace and accounting.
// ---------------------------------------------------------------------------

void check_invariants(const ScenarioConfig& cfg, const ScenarioResult& result,
                      const std::string& tag,
                      std::vector<std::string>& failures) {
  const auto bad = [&](const std::string& what) {
    fail(failures, "invariant[" + tag + "]: " + what);
  };
  const sim::Trace& trace = result.trace;
  // Heterogeneous classes scale individual capacities by up to the class
  // ratio; the level bound must cover the largest class, not the base value.
  const double capacity = cfg.topology.battery_capacity *
                          std::max(1.0, cfg.topology.class_capacity_ratio);
  const Seconds horizon = cfg.horizon;

  std::unordered_map<net::NodeId, Seconds> death_time;
  Seconds prev = 0.0;
  for (std::size_t i = 0; i < trace.deaths.size(); ++i) {
    const auto& d = trace.deaths[i];
    if (d.time < prev - 1e-9) bad("deaths out of order at #" + fmt(i));
    if (d.time < -1e-9 || d.time > horizon + 1e-6) {
      bad("death time " + fmt(d.time) + " outside horizon");
    }
    if (!death_time.emplace(d.node, d.time).second) {
      bad("node " + fmt(std::size_t(d.node)) + " died twice");
    }
    prev = d.time;
  }
  const auto died_before = [&](net::NodeId node, Seconds t) {
    const auto it = death_time.find(node);
    return it != death_time.end() && t > it->second + 1e-6;
  };

  prev = 0.0;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const auto& r = trace.requests[i];
    if (r.time < prev - 1e-9) bad("requests out of order at #" + fmt(i));
    if (r.time < -1e-9 || r.time > horizon + 1e-6) {
      bad("request time " + fmt(r.time) + " outside horizon");
    }
    if (r.level_at_request < -1e-6 ||
        r.level_at_request > capacity + kEnergyTol) {
      bad("request level " + fmt(r.level_at_request) + " outside [0, " +
          fmt(capacity) + "]");
    }
    if (died_before(r.node, r.time)) {
      bad("request from dead node " + fmt(std::size_t(r.node)));
    }
    prev = r.time;
  }

  std::unordered_map<net::NodeId, std::vector<std::pair<Seconds, Seconds>>>
      node_sessions;
  Joules radiated_sum = 0.0;
  for (std::size_t i = 0; i < trace.sessions.size(); ++i) {
    const auto& s = trace.sessions[i];
    if (s.start < -1e-9 || s.end > horizon + 1e-6 || s.start > s.end + 1e-9) {
      bad("session #" + fmt(i) + " times [" + fmt(s.start) + ", " +
          fmt(s.end) + "] malformed");
    }
    if (s.delivered < -1e-9 || s.radiated < -1e-9 || s.expected_gain < -1e-9) {
      bad("session #" + fmt(i) + " negative energy");
    }
    if (s.delivered > s.radiated + kEnergyTol) {
      bad("session #" + fmt(i) + " delivered " + fmt(s.delivered) +
          " J exceeds radiated " + fmt(s.radiated) + " J");
    }
    if (died_before(s.node, s.start)) {
      bad("session started on dead node " + fmt(std::size_t(s.node)));
    }
    node_sessions[s.node].emplace_back(s.start, s.end);
    radiated_sum += s.radiated;
  }
  for (auto& [node, spans] : node_sessions) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].first < spans[i - 1].second - 1e-6) {
        bad("overlapping sessions on node " + fmt(std::size_t(node)));
        break;
      }
    }
  }

  prev = 0.0;
  for (std::size_t i = 0; i < trace.escalations.size(); ++i) {
    const auto& e = trace.escalations[i];
    if (e.time < prev - 1e-9) bad("escalations out of order at #" + fmt(i));
    if (e.time < -1e-9 || e.time > horizon + 1e-6) {
      bad("escalation time " + fmt(e.time) + " outside horizon");
    }
    if (died_before(e.node, e.time)) {
      bad("escalation for dead node " + fmt(std::size_t(e.node)));
    }
    prev = e.time;
  }

  // Energy conservation against the depot ledgers (summed across the fleet:
  // the trace interleaves every vehicle's sessions).  The trace only records
  // completed sessions (one may be in flight at the horizon) and breakdown
  // damage is deliberately off-ledger, so the checks are one-sided.
  const mc::EnergyLedger& ledger = result.fleet_ledger;
  if (radiated_sum > ledger.radiated_total() + kEnergyTol +
                         1e-9 * std::abs(radiated_sum)) {
    bad("trace radiation " + fmt(radiated_sum) +
        " J exceeds ledger total " + fmt(ledger.radiated_total()) + " J");
  }
  if (ledger.radiated_total() > ledger.drawn_for_radiation + kEnergyTol) {
    bad("ledger radiated " + fmt(ledger.radiated_total()) +
        " J exceeds battery draw " + fmt(ledger.drawn_for_radiation) + " J");
  }

  if (result.min_final_level_fraction < -1e-9 ||
      result.max_final_level_fraction > 1.0 + 1e-9) {
    bad("final battery fraction outside [0, 1]: min " +
        fmt(result.min_final_level_fraction) + " max " +
        fmt(result.max_final_level_fraction));
  }
  if (result.alive_at_end > 0 &&
      result.min_final_level_fraction > result.max_final_level_fraction) {
    bad("min final fraction exceeds max");
  }
}

// ---------------------------------------------------------------------------
// Oracle 3: liveness — bounded event count, no starved requests.
// ---------------------------------------------------------------------------

void check_liveness(const ScenarioConfig& cfg, const ScenarioResult& result,
                    std::vector<std::string>& failures) {
  const auto bad = [&](const std::string& what) {
    fail(failures, "liveness: " + what);
  };

  // Generous per-mission bound; a kernel spin (events rescheduling each
  // other without advancing the protocol) blows far past it.
  const std::uint64_t bound = 2'000'000 + 20'000 * result.node_count;
  if (result.events_executed > bound) {
    bad("event kernel executed " + fmt(result.events_executed) +
        " events (bound " + fmt(bound) + ")");
  }

  // Starvation: unless escalation reports can be dropped by a fault, every
  // request CYCLE old enough must be answered by a session, an escalation,
  // or the node's death — even when the charger broke down permanently.
  // The grouping into cycles matters: an emergency upgrade of a
  // still-pending request re-logs a trace request, and the node
  // deliberately does not re-escalate when the cycle's escalation already
  // fired (see World::fire_emergency), so the guarantee attaches to the
  // first request of a pending cycle, not to every trace entry.
  if (cfg.faults.escalation_drop_prob > 0.0) return;
  const Seconds slack =
      cfg.world.patience + cfg.faults.escalation_delay_max + 3'600.0;

  // kind order breaks time ties so a same-instant answer satisfies the
  // request it answers; requests sort 1e-6 early to keep the old tolerance.
  enum Kind { kRequest = 0, kEscalation = 1, kClose = 2 };
  struct NodeEvent {
    Seconds time;
    int kind;
  };
  std::unordered_map<net::NodeId, std::vector<NodeEvent>> timelines;
  for (const auto& r : result.trace.requests) {
    timelines[r.node].push_back({r.time - 1e-6, kRequest});
  }
  for (const auto& e : result.trace.escalations) {
    timelines[e.node].push_back({e.time, kEscalation});
  }
  for (const auto& s : result.trace.sessions) {
    timelines[s.node].push_back({s.start, kClose});
  }
  for (const auto& d : result.trace.deaths) {
    timelines[d.node].push_back({d.time, kClose});
  }
  std::vector<std::pair<Seconds, net::NodeId>> starved;
  for (auto& [node, events] : timelines) {
    std::sort(events.begin(), events.end(),
              [](const NodeEvent& a, const NodeEvent& b) {
                return a.time != b.time ? a.time < b.time : a.kind < b.kind;
              });
    Seconds cycle_start = -1.0;  // < 0: no open cycle
    bool answered = false;
    for (const NodeEvent& event : events) {
      if (event.kind == kRequest) {
        if (cycle_start < 0.0) {
          cycle_start = event.time + 1e-6;
          answered = false;
        }
      } else if (event.kind == kEscalation) {
        answered = true;  // cycle stays pending but the sink was told
      } else {
        cycle_start = -1.0;  // session start / death closes the cycle
      }
    }
    if (cycle_start >= 0.0 && !answered && cycle_start + slack < cfg.horizon) {
      starved.push_back({cycle_start, node});
    }
  }
  if (!starved.empty()) {
    const auto worst = *std::min_element(starved.begin(), starved.end());
    bad("request from node " + fmt(std::size_t(worst.second)) + " at t=" +
        fmt(worst.first) + " never answered (starved protocol)");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Digest of the production run — bit-identical across thread counts.
// ---------------------------------------------------------------------------

std::uint64_t digest_result(const ScenarioResult& result) {
  Fnv fnv;
  const sim::Trace& t = result.trace;
  fnv.mix(std::uint64_t{t.requests.size()});
  for (const auto& r : t.requests) {
    fnv.mix(std::uint64_t{r.node});
    fnv.mix(r.time);
    fnv.mix(r.level_at_request);
    fnv.mix(std::uint64_t{r.emergency ? 1u : 0u});
  }
  fnv.mix(std::uint64_t{t.sessions.size()});
  for (const auto& s : t.sessions) {
    fnv.mix(std::uint64_t{s.node});
    fnv.mix(std::uint64_t(s.kind));
    fnv.mix(s.start);
    fnv.mix(s.end);
    fnv.mix(s.delivered);
    fnv.mix(s.radiated);
    fnv.mix(s.rf_observed);
  }
  fnv.mix(std::uint64_t{t.deaths.size()});
  for (const auto& d : t.deaths) {
    fnv.mix(std::uint64_t{d.node});
    fnv.mix(d.time);
    fnv.mix(std::uint64_t{d.request_outstanding ? 1u : 0u});
  }
  fnv.mix(std::uint64_t{t.escalations.size()});
  for (const auto& e : t.escalations) {
    fnv.mix(std::uint64_t{e.node});
    fnv.mix(e.time);
  }
  fnv.mix(std::uint64_t{result.detections.size()});
  for (const auto& d : result.detections) {
    fnv.mix(d.detector);
    fnv.mix(std::uint64_t{d.detection.has_value() ? 1u : 0u});
    if (d.detection.has_value()) {
      fnv.mix(std::uint64_t{d.detection->node});
      fnv.mix(d.detection->time);
    }
  }
  fnv.mix(std::uint64_t{result.keys.size()});
  for (const net::NodeId id : result.keys) fnv.mix(std::uint64_t{id});
  const fault::FaultStats& fs = result.fault_stats;
  fnv.mix(fs.mc_breakdowns);
  fnv.mix(fs.mc_repairs);
  fnv.mix(fs.node_burst_kills);
  fnv.mix(fs.phase_noise_windows);
  fnv.mix(fs.escalations_dropped);
  fnv.mix(fs.escalations_delayed);
  fnv.mix(fs.drift_nodes);
  fnv.mix(fs.absorbed);
  fnv.mix(fs.mc_handoffs);
  fnv.mix(std::uint64_t{result.alive_at_end});
  fnv.mix(result.plans_computed);
  fnv.mix(result.events_executed);
  return fnv.hash();
}

std::pair<ScenarioConfig, ChargerMode> resolve_overrides(
    const FuzzOverrides& overrides) {
  FuzzOverrides entries = overrides;
  std::string mode_str = "attack";
  if (const auto it = entries.find("mode"); it != entries.end()) {
    mode_str = it->second;
    entries.erase(it);
  }
  WRSN_REQUIRE(mode_str == "attack" || mode_str == "benign",
               "fuzz override 'mode' must be attack|benign");
  const ChargerMode mode =
      mode_str == "attack" ? ChargerMode::Attack : ChargerMode::Benign;
  return {apply_config(default_scenario(), entries), mode};
}

csa::Plan BuggyPlanner::plan(const csa::TideInstance& instance,
                             Rng& rng) const {
  csa::Plan plan = inner_.plan(instance, rng);
  if (plan.visits.size() >= 2) std::swap(plan.visits[0], plan.visits[1]);
  return plan;
}

FuzzOverrides generate_fuzz_overrides(Rng& rng) {
  FuzzOverrides o;

  const bool attack = rng.uniform() < 2.0 / 3.0;
  o["mode"] = attack ? "attack" : "benign";
  o["seed"] = fmt(std::size_t(rng.uniform_int(1, 1'000'000'000)));

  const std::size_t nodes = std::size_t(rng.uniform_int(16, 49));
  o["topology.node_count"] = fmt(nodes);
  // Hold the calibrated density (100 nodes on 400 m x 400 m).
  o["topology.region_size"] = fmt(40.0 * std::sqrt(double(nodes)));

  const double horizon = rng.uniform(0.25, 1.0) * 86'400.0;
  o["horizon"] = fmt(horizon);

  // Activity-dense missions: small batteries, an elevated sensing floor,
  // and initial charge just above the request threshold, so requests,
  // sessions, escalations, and exhaustion deaths all fit inside a short
  // horizon (defaults would leave a sub-day trace empty and every oracle
  // vacuous).
  o["topology.battery_capacity"] = fmt(rng.uniform(1'500.0, 4'000.0));
  o["world.sensing_power"] = fmt(rng.uniform(0.02, 0.08));
  const double level_min = rng.uniform(0.32, 0.5);
  o["world.initial_level_min"] = fmt(level_min);
  o["world.initial_level_max"] =
      fmt(std::min(1.0, level_min + rng.uniform(0.05, 0.3)));
  o["world.patience"] = fmt(rng.uniform(1'800.0, 10'800.0));

  // Scenario-frontier families: deployment shape, heterogeneous classes,
  // waypoint mobility, and k-coverage utility — each drawn independently so
  // plain, single-family, and compound missions all appear.
  if (rng.bernoulli(0.25)) {
    o["topology.deployment"] = "corridor";
    // 1-3 corridors always pass through the centered sink, so the network
    // stays connected without retrying topology generation.
    o["topology.corridor_count"] = fmt(std::size_t(rng.uniform_int(1, 3)));
  }
  if (rng.bernoulli(0.35)) {
    o["topology.class_count"] = fmt(std::size_t(rng.uniform_int(2, 4)));
    o["topology.class_capacity_ratio"] = fmt(rng.uniform(1.2, 3.0));
    o["topology.class_rate_ratio"] = fmt(rng.uniform(1.0, 2.5));
  }
  if (rng.bernoulli(0.35)) {
    o["mobility.fraction"] = fmt(rng.uniform(0.05, 0.3));
    o["mobility.interval"] = fmt(rng.uniform(600.0, 3'600.0));
    o["mobility.speed_min"] = fmt(rng.uniform(0.3, 1.0));
    o["mobility.speed_max"] = fmt(rng.uniform(1.0, 2.5));
    o["mobility.pause_max"] = fmt(rng.uniform(0.0, 1'200.0));
  }
  if (rng.bernoulli(0.35)) {
    o["coverage.k"] = fmt(std::size_t(rng.uniform_int(1, 4)));
    o["coverage.bonus"] = fmt(rng.uniform(0.2, 2.0));
    if (rng.bernoulli(0.5)) o["coverage.radius"] = fmt(rng.uniform(40.0, 90.0));
  }

  o["world.emergency_enabled"] = rng.bernoulli(0.5) ? "true" : "false";
  o["world.hardware_mtbf"] =
      rng.bernoulli(0.5) ? fmt(rng.uniform(5.0, 20.0) * 86'400.0) : "0";
  if (rng.bernoulli(0.3)) o["hardened_detectors"] = "true";

  if (attack) {
    o["attack.key_count"] = fmt(std::size_t(rng.uniform_int(4, 8)));
    static constexpr const char* kSpoofModes[] = {
        "phase-cancel", "partial-cancel", "silent-skip", "no-service"};
    o["attack.spoof_mode"] = kSpoofModes[rng.uniform_int(0, 3)];
  }

  // Policy family (DESIGN.md §15): adaptive attacker spoof-scheduling and
  // defender threshold re-tuning, so the differential oracle exercises the
  // bandit epoch arithmetic and the adaptive suite in both world modes.
  if (attack && rng.bernoulli(0.35)) {
    o["policy.attacker"] = rng.bernoulli(0.5) ? "eps-greedy" : "ucb";
    o["policy.epsilon"] = fmt(rng.uniform(0.0, 0.4));
    o["policy.ucb_c"] = fmt(rng.uniform(0.5, 3.0));
    o["policy.epoch"] = fmt(rng.uniform(0.1, 0.5) * horizon);
    o["policy.risk_weight"] = fmt(rng.uniform(0.0, 5.0));
    o["policy.risk_budget"] = fmt(std::size_t(rng.uniform_int(0, 6)));
  }
  if (rng.bernoulli(0.35)) {
    o["policy.defender"] = "adaptive";
    o["policy.defender_window"] = fmt(rng.uniform(0.1, 0.4) * horizon);
    o["policy.defender_quantile"] = fmt(rng.uniform(1.0, 4.0));
    o["policy.defender_min_samples"] = fmt(std::size_t(rng.uniform_int(1, 4)));
  }

  // Fleet mix: a quarter of missions run 2-3 territory-partitioned
  // chargers, so the differential and liveness oracles cover the fleet
  // planner, the per-cell agents, and (combined with the permanent-loss
  // fault below) the charger handoff path.
  if (rng.bernoulli(0.25)) {
    const std::size_t fleet = std::size_t(rng.uniform_int(2, 3));
    o["fleet.size"] = fmt(fleet);
    if (attack) {
      o["fleet.compromised"] =
          fmt(std::size_t(rng.uniform_int(0, std::int64_t(fleet) - 1)));
    }
  }

  // Fault mix: each kind independently enabled so single-fault and
  // compound-fault missions both appear.
  if (rng.bernoulli(0.6)) {
    o["faults.mc_breakdown_mtbf"] = fmt(rng.uniform(0.2, 1.5) * horizon);
    o["faults.mc_repair_mean"] = fmt(rng.uniform(600.0, 7'200.0));
    o["faults.mc_budget_loss"] = fmt(rng.uniform(0.0, 0.2));
    if (rng.bernoulli(0.3)) {
      o["faults.mc_permanent_at"] = fmt(rng.uniform(0.3, 0.9) * horizon);
    }
  }
  if (rng.bernoulli(0.5)) {
    o["faults.node_burst_mtbf"] = fmt(rng.uniform(0.3, 2.0) * horizon);
    o["faults.node_burst_size"] = fmt(std::size_t(rng.uniform_int(1, 4)));
  }
  if (rng.bernoulli(0.4)) {
    o["faults.phase_noise_mtbf"] = fmt(rng.uniform(0.3, 2.0) * horizon);
    o["faults.phase_noise_duration"] = fmt(rng.uniform(600.0, 7'200.0));
    o["faults.phase_noise_scale"] = fmt(rng.uniform(2.0, 50.0));
  }
  const double drop = rng.bernoulli(0.4) ? rng.uniform(0.0, 0.5) : 0.0;
  const double delay = rng.bernoulli(0.4) ? rng.uniform(0.0, 0.5) : 0.0;
  if (drop > 0.0) o["faults.escalation_drop_prob"] = fmt(drop);
  if (delay > 0.0) {
    o["faults.escalation_delay_prob"] = fmt(delay);
    o["faults.escalation_delay_max"] = fmt(rng.uniform(300.0, 3'600.0));
  }
  if (rng.bernoulli(0.4)) {
    o["faults.battery_drift_mtbf"] = fmt(rng.uniform(0.3, 2.0) * horizon);
    o["faults.battery_drift_power"] = fmt(rng.uniform(1e-3, 2e-2));
    if (rng.bernoulli(0.5)) {
      o["faults.battery_drift_duration"] = fmt(rng.uniform(1'800.0, 14'400.0));
    }
  }
  return o;
}

FuzzVerdict run_fuzz_trial(const FuzzOverrides& overrides,
                           bool inject_divergence) {
  FuzzVerdict verdict;
  try {
    const auto [cfg, mode] = resolve_overrides(overrides);

    const csa::CsaPlanner fast_planner;
    const BuggyPlanner buggy_planner;
    const csa::reference::NaiveCsaPlanner ref_planner;

    ScenarioConfig fast_cfg = cfg;
    fast_cfg.world.update_mode = sim::WorldUpdateMode::Fast;
    const csa::Planner* production =
        inject_divergence ? static_cast<const csa::Planner*>(&buggy_planner)
                          : &fast_planner;

    ScenarioConfig ref_cfg = cfg;
    ref_cfg.world.update_mode = sim::WorldUpdateMode::Reference;

    // run_mission owns the fleet routing and the attack-mode clamp of the
    // compromised index, so a fuzz replay, a CLI replay, and a service
    // request of the same overrides bind the attacker identically.
    const ScenarioResult fast = run_mission(fast_cfg, mode, production);
    const ScenarioResult ref = run_mission(ref_cfg, mode, &ref_planner);

    check_differential(fast, ref, verdict.failures);
    check_invariants(cfg, fast, "fast", verdict.failures);
    check_invariants(cfg, ref, "reference", verdict.failures);
    check_liveness(cfg, fast, verdict.failures);
    verdict.digest = digest_result(fast);
  } catch (const std::exception& e) {
    // A crash is a finding, not a campaign abort — the repro line survives.
    verdict.failures.clear();
    verdict.failures.push_back(std::string("exception: ") + e.what());
  }
  return verdict;
}

std::string format_repro(const FuzzOverrides& overrides) {
  std::string line;
  for (const auto& [key, value] : overrides) {
    if (!line.empty()) line += ';';
    line += key;
    line += '=';
    line += value;
  }
  return line;
}

FuzzOverrides parse_repro(const std::string& line) {
  FuzzOverrides overrides;
  std::size_t begin = 0;
  while (begin <= line.size()) {
    std::size_t end = line.find(';', begin);
    if (end == std::string::npos) end = line.size();
    const std::string token = line.substr(begin, end - begin);
    if (!token.empty()) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        throw ConfigError("repro token '" + token +
                          "': expected 'key=value'");
      }
      const std::string key = token.substr(0, eq);
      if (!overrides.emplace(key, token.substr(eq + 1)).second) {
        throw ConfigError("repro line: duplicate key '" + key + "'");
      }
    }
    begin = end + 1;
  }
  if (overrides.empty()) throw ConfigError("repro line is empty");
  return overrides;
}

FuzzReport run_fuzz_campaign(std::size_t trials, std::uint64_t seed,
                             std::size_t threads, bool inject_divergence,
                             std::size_t max_failures) {
  // Trial generation is sequential from a fixed fork, so the campaign is a
  // pure function of (trials, seed) regardless of thread count.
  Rng gen = Rng(seed).fork("fuzz-gen");
  std::vector<FuzzOverrides> configs;
  configs.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    configs.push_back(generate_fuzz_overrides(gen));
  }

  runner::TrialOptions options;
  options.threads = threads;
  options.seed = seed;
  options.label = "fuzz";
  const std::vector<FuzzVerdict> verdicts = runner::run_trials(
      std::span<const FuzzOverrides>(configs),
      [inject_divergence](const FuzzOverrides& overrides, Rng&) {
        return run_fuzz_trial(overrides, inject_divergence);
      },
      options);

  FuzzReport report;
  report.trials = trials;
  Fnv fold;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    fold.mix(verdicts[i].digest);
    if (verdicts[i].ok()) continue;
    ++report.failed_trials;
    if (report.repro_lines.size() < max_failures) {
      report.repro_lines.push_back(format_repro(configs[i]));
      report.first_failures.push_back(verdicts[i].failures.front());
    }
  }
  report.digest = fold.hash();
  return report;
}

}  // namespace wrsn::analysis
