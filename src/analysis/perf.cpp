#include "analysis/perf.hpp"

#include <algorithm>

namespace wrsn::analysis {

Table perf_table(const runner::RunStats& stats, const std::string& title) {
  Table table(title);
  table.headers({"trials", "threads", "wall [s]", "trial total [s]",
                 "trial mean [ms]", "trial min [ms]", "trial max [ms]",
                 "trials/s", "speedup"});
  double min_s = 0.0, max_s = 0.0;
  if (!stats.trial_seconds.empty()) {
    const auto [lo, hi] = std::minmax_element(stats.trial_seconds.begin(),
                                              stats.trial_seconds.end());
    min_s = *lo;
    max_s = *hi;
  }
  const double total = stats.trial_seconds_total();
  const double mean =
      stats.trials > 0 ? total / double(stats.trials) : 0.0;
  table.row({std::to_string(stats.trials), std::to_string(stats.threads),
             fmt(stats.wall_seconds, 3), fmt(total, 3), fmt(mean * 1e3, 1),
             fmt(min_s * 1e3, 1), fmt(max_s * 1e3, 1),
             fmt(stats.throughput(), 1), fmt(stats.speedup(), 2)});
  return table;
}

void print_perf(std::ostream& os, const runner::RunStats& stats,
                const std::string& title) {
  perf_table(stats, title).print(os);
}

void merge_stats(runner::RunStats& into, const runner::RunStats& extra) {
  into.trials += extra.trials;
  into.threads = std::max(into.threads, extra.threads);
  into.wall_seconds += extra.wall_seconds;
  into.trial_seconds.insert(into.trial_seconds.end(),
                            extra.trial_seconds.begin(),
                            extra.trial_seconds.end());
}

}  // namespace wrsn::analysis
