#include "analysis/perf.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wrsn::analysis {

namespace {

std::vector<std::string> stats_cells(const runner::RunStats& stats,
                                     const std::string& threads_cell) {
  double min_s = 0.0, max_s = 0.0;
  if (!stats.trial_seconds.empty()) {
    const auto [lo, hi] = std::minmax_element(stats.trial_seconds.begin(),
                                              stats.trial_seconds.end());
    min_s = *lo;
    max_s = *hi;
  }
  const double total = stats.trial_seconds_total();
  const double mean = stats.trials > 0 ? total / double(stats.trials) : 0.0;
  return {std::to_string(stats.trials), threads_cell,
          fmt(stats.wall_seconds, 3), fmt(total, 3),   fmt(mean * 1e3, 1),
          fmt(min_s * 1e3, 1),        fmt(max_s * 1e3, 1),
          fmt(stats.throughput(), 1), fmt(stats.speedup(), 2)};
}

const std::vector<std::string> kStatsHeaders = {
    "trials",          "threads",        "wall [s]",
    "trial total [s]", "trial mean [ms]", "trial min [ms]",
    "trial max [ms]",  "trials/s",        "speedup"};

}  // namespace

Table perf_table(const runner::RunStats& stats, const std::string& title) {
  Table table(title);
  table.headers(kStatsHeaders);
  table.row(stats_cells(stats, std::to_string(stats.threads)));
  return table;
}

void print_perf(std::ostream& os, const runner::RunStats& stats,
                const std::string& title) {
  perf_table(stats, title).print(os);
}

runner::RunStats* PhasedStats::phase(std::string name) {
  Entry& entry = phases_.emplace_back();
  entry.name = std::move(name);
  return &entry.stats;
}

const runner::RunStats& PhasedStats::phase_stats(std::size_t i) const {
  WRSN_REQUIRE(i < phases_.size(), "phase index out of range");
  return phases_[i].stats;
}

const std::string& PhasedStats::phase_name(std::size_t i) const {
  WRSN_REQUIRE(i < phases_.size(), "phase index out of range");
  return phases_[i].name;
}

runner::RunStats PhasedStats::combined() const {
  runner::RunStats out;
  out.threads = phases_.empty() ? 1 : phases_.front().stats.threads;
  for (const Entry& entry : phases_) {
    out.trials += entry.stats.trials;
    out.wall_seconds += entry.stats.wall_seconds;
    out.trial_seconds.insert(out.trial_seconds.end(),
                             entry.stats.trial_seconds.begin(),
                             entry.stats.trial_seconds.end());
    if (entry.stats.threads != out.threads) out.threads = 0;  // mixed
  }
  return out;
}

Table PhasedStats::table(const std::string& title) const {
  Table table(title);
  std::vector<std::string> headers = kStatsHeaders;
  headers.insert(headers.begin(), "phase");
  table.headers(std::move(headers));

  const auto add_row = [&table](const std::string& name,
                                const runner::RunStats& stats,
                                const std::string& threads_cell) {
    std::vector<std::string> cells = stats_cells(stats, threads_cell);
    cells.insert(cells.begin(), name);
    table.row(std::move(cells));
  };
  for (const Entry& entry : phases_) {
    add_row(entry.name, entry.stats, std::to_string(entry.stats.threads));
  }
  if (phases_.size() > 1) {
    const runner::RunStats total = combined();
    add_row("combined", total,
            total.threads == 0 ? "mixed" : std::to_string(total.threads));
  }
  return table;
}

void print_perf(std::ostream& os, const PhasedStats& stats,
                const std::string& title) {
  stats.table(title).print(os);
}

}  // namespace wrsn::analysis
