// Small statistics helpers for multi-seed experiment aggregation.
#pragma once

#include <span>

namespace wrsn::analysis {

/// Aggregate of a sample: count, mean, unbiased stddev, and a 95 % normal
/// confidence half-width.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;   ///< 1.96 * stddev / sqrt(count)
  double min = 0.0;
  double max = 0.0;
};

/// Computes the summary of `values` (empty input yields a zero summary).
Summary summarize(std::span<const double> values);

/// Sample quantile (linear interpolation); q in [0, 1].
double quantile(std::span<const double> values, double q);

}  // namespace wrsn::analysis
