// Small statistics helpers for multi-seed experiment aggregation.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

namespace wrsn::analysis {

/// Aggregate of a sample: count, mean, unbiased stddev, and a 95 %
/// confidence half-width using the Student-t critical value for the sample
/// size (the benches aggregate 6-10 seeds, where the normal 1.96 would
/// understate the interval).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;   ///< t_critical_95(count-1) * stddev / sqrt(count)
  double min = 0.0;
  double max = 0.0;
};

/// Two-sided 95 % Student-t critical value for `dof` degrees of freedom
/// (exact table through dof = 30, 1.96 beyond; 0.0 for dof = 0).
double t_critical_95(std::size_t dof);

/// Computes the summary of `values` (empty input yields a zero summary).
Summary summarize(std::span<const double> values);

/// Sample quantile (linear interpolation); q in [0, 1].
double quantile(std::span<const double> values, double q);

/// Evaluates several quantiles with a single copy + sort of the sample
/// (`quantile` re-sorts per call, which benches requesting several
/// quantiles per row pay repeatedly).  Returns one value per entry of `qs`,
/// in order; each q must be in [0, 1] (q = 0 is the minimum, q = 1 the
/// maximum).
std::vector<double> sorted_quantiles(std::span<const double> values,
                                     std::initializer_list<double> qs);

}  // namespace wrsn::analysis
