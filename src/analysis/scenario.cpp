#include "analysis/scenario.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/check.hpp"
#include "detect/adaptive.hpp"
#include "fault/injector.hpp"
#include "mc/fleet.hpp"
#include "obs/metrics.hpp"

namespace wrsn::analysis {
namespace {

/// Builds the fault injector for one mission (null when faults are off):
/// compiles the schedule from its own fork of the scenario rng and wires
/// the MC-level hooks to whichever agent drives the (possibly compromised)
/// vehicle.  Fleet runs route MC faults to the compromised vehicle when
/// present, else the first vehicle; `on_permanent_loss` (fleet runs only)
/// is fired once after a permanent breakdown so survivors can adopt the
/// victim's territory.
std::unique_ptr<fault::FaultInjector> arm_faults(
    const ScenarioConfig& config, sim::World& world, const Rng& rng,
    mc::ChargerAgent* benign, csa::AttackAgent* attacker,
    std::function<void()> on_permanent_loss = nullptr) {
  if (!config.faults.any()) return nullptr;
  fault::FaultPlan plan =
      fault::FaultPlan::compile(config.faults, config.horizon,
                                world.network().size(), rng.fork("faults"));
  fault::FaultHooks hooks;
  hooks.mc_permanent_loss = std::move(on_permanent_loss);
  if (attacker != nullptr) {
    hooks.mc_breakdown = [attacker](double loss, bool permanent) {
      attacker->fault_breakdown(loss, permanent);
    };
    hooks.mc_repair = [attacker] { attacker->fault_repair(); };
    hooks.phase_noise = [attacker](double scale) {
      attacker->fault_phase_noise(scale);
    };
  } else if (benign != nullptr) {
    hooks.mc_breakdown = [benign](double loss, bool permanent) {
      benign->fault_breakdown(loss, permanent);
    };
    hooks.mc_repair = [benign] { benign->fault_repair(); };
    // Phase noise degrades the spoofing payload; a benign fleet absorbs it.
  }
  auto injector = std::make_unique<fault::FaultInjector>(
      world, std::move(plan), std::move(hooks), rng.fork("fault-exec"));
  injector->arm();
  return injector;
}

void finish_result(ScenarioResult& result, sim::World& world,
                   const sim::Simulator& simulator,
                   const fault::FaultInjector* injector) {
  result.alive_at_end = world.alive_count();
  result.sink_connected_at_end = world.sink_connected_count();
  result.events_executed = simulator.executed();
  if (injector != nullptr) result.fault_stats = injector->stats();
  double min_frac = 1.0, max_frac = 0.0;
  bool any_alive = false;
  for (net::NodeId id = 0; id < world.network().size(); ++id) {
    if (!world.alive(id)) continue;
    any_alive = true;
    const double frac = world.level_fraction(id);
    min_frac = std::min(min_frac, frac);
    max_frac = std::max(max_frac, frac);
  }
  result.min_final_level_fraction = any_alive ? min_frac : 0.0;
  result.max_final_level_fraction = any_alive ? max_frac : 0.0;
}

}  // namespace

ScenarioConfig default_scenario() {
  ScenarioConfig cfg;

  // Deployment: 100 nodes on 400 m x 400 m with 65 m radios is connected
  // with ~8 expected neighbours; the sink sits at the field center.
  cfg.topology.region = {{0.0, 0.0}, {400.0, 400.0}};
  cfg.topology.node_count = 100;
  cfg.topology.comm_range = 65.0;
  cfg.topology.mean_data_rate_bps = 12'000.0;
  cfg.topology.battery_capacity = 10'800.0;
  cfg.topology.min_separation = 2.0;

  // World protocol: request at 30 % believed charge, 3 h patience
  // (nodes still hold 12+ h of margin at request time, and honest queueing
  // bursts of ~6 requests fit without escalating), steady-state initial
  // charge spread.
  cfg.world.request_threshold = 0.30;
  cfg.world.patience = 10'800.0;
  cfg.world.min_request_gap = 300.0;
  cfg.world.charge_target_fraction = 0.95;
  cfg.world.initial_level_min = 0.50;
  cfg.world.initial_level_max = 1.00;

  // Charging chain: 8 W source with the literature's (d + 0.2316)^-2 decay
  // yields ~5 W docked DC after the nonlinear rectifier, so a full service
  // takes ~23 minutes — demand is ~45 % of one charger's capacity.
  cfg.world.charging.source_power = 10.0;
  cfg.world.charging.gain_product = 0.35;
  cfg.world.charging.dock_distance = 0.3;
  cfg.world.charging.max_range = 8.0;
  cfg.world.charging.rectifier.sensitivity = 1e-3;
  cfg.world.charging.rectifier.max_efficiency = 0.65;
  cfg.world.charging.rectifier.knee = 30e-3;
  cfg.world.charging.rectifier.dc_cap = 6.0;

  // Node drain: 10 mW sensing floor plus first-order radio traffic; leaves
  // run ~20 mW, routing hotspots 3-5x that.
  cfg.world.drain.sensing_power = 10e-3;

  // Background component failures: ~1-2 nodes per 5-day mission across the
  // fleet — the noise floor any death-rate monitor must be calibrated to.
  cfg.world.hardware_mtbf = 3.0e7;

  // Vehicle: 3 m/s, 5 MJ onboard, 40 J/m locomotion.
  mc::ChargerParams charger;
  charger.depot = {0.0, 0.0};
  charger.speed = 3.0;
  charger.battery_capacity = 5e6;
  charger.travel_cost_per_meter = 40.0;
  charger.pa_efficiency = 0.85;
  charger.depot_recharge_power = 500.0;

  cfg.benign.charger = charger;
  cfg.benign.policy = mc::SchedulePolicy::Njnp;
  cfg.benign.battery_reserve_fraction = 0.10;

  cfg.attack.charger = charger;
  cfg.attack.key_selection.rule = net::KeyNodeRule::Hybrid;
  cfg.attack.key_selection.max_count = 10;
  cfg.attack.key_selection.min_disconnect = 1;
  cfg.attack.battery_reserve_fraction = 0.10;

  cfg.horizon = 5 * 86'400.0;
  cfg.attack.campaign_deadline = cfg.horizon;
  cfg.seed = 1;
  return cfg;
}

DetectorSetup make_detector_setup(const ScenarioConfig& config,
                                  const sim::World& world) {
  // The defender calibrates its death-rate bound to the fleet's known
  // background failure rate.
  const std::size_t node_count = world.network().size();
  const double expected_deaths_per_window =
      config.world.hardware_mtbf > 0.0
          ? double(node_count) * 86'400.0 / config.world.hardware_mtbf
          : 0.0;
  DetectorSetup setup{
      .calibration = detect::SuiteCalibration::for_deployment(
          node_count, expected_deaths_per_window),
      .suite = {},
      .context = {},
  };
  // The defender policy selects the suite: Static deploys the fixed PR-4
  // calibration; Adaptive swaps in the per-window threshold re-tuners
  // (detect/adaptive.hpp), same lineup and size either way.
  setup.suite =
      config.policy.defender.kind == policy::DefenderPolicyKind::Adaptive
          ? detect::make_adaptive_suite(setup.calibration,
                                        config.policy.defender,
                                        config.hardened_detectors)
          : (config.hardened_detectors
                 ? detect::make_hardened_suite(setup.calibration)
                 : detect::make_deployed_suite(setup.calibration));
  setup.context.network = &world.network();
  setup.context.charging_model = &world.charging_model();
  setup.context.nominal_dc = world.nominal_dc_power();
  setup.context.benign_gain_mean = config.world.benign_gain_mean;
  setup.context.benign_gain_cv = config.world.benign_gain_cv;
  setup.context.noise_seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  setup.context.horizon = config.horizon;
  setup.context.expected_deaths_per_window = expected_deaths_per_window;
  return setup;
}

ScenarioResult run_scenario(const ScenarioConfig& config, ChargerMode mode,
                            const csa::Planner* planner) {
  Rng rng(config.seed);
  Rng topo_rng = rng.fork("topology");
  net::Network network = net::generate_topology(config.topology, topo_rng);

  sim::Simulator simulator;
  sim::World world(simulator, std::move(network), config.world,
                   rng.fork("world"));

  ScenarioResult result;
  result.node_count = world.network().size();

  std::unique_ptr<mc::ChargerAgent> benign;
  std::unique_ptr<csa::AttackAgent> attacker;
  const csa::CsaPlanner default_planner;

  if (mode == ChargerMode::Benign) {
    // Keys are still identified (same rule as the attacker would use) so
    // benign runs report comparable key-node survival numbers.
    result.keys = net::select_key_nodes(world.network(), world.loads(),
                                        config.attack.key_selection);
    benign = std::make_unique<mc::ChargerAgent>(world, config.benign);
    benign->start();
  } else {
    attacker = std::make_unique<csa::AttackAgent>(
        world, config.attack, planner != nullptr ? *planner : default_planner,
        rng.fork("attack"), config.policy.attacker);
    attacker->start();
    result.keys = attacker->key_targets();
  }

  const std::unique_ptr<fault::FaultInjector> injector =
      arm_faults(config, world, rng, benign.get(), attacker.get());

  simulator.run_until(config.horizon);

  const DetectorSetup detectors = make_detector_setup(config, world);
  result.detections = detectors.suite.run(world.trace(), detectors.context);
  result.report = csa::build_report(world.network(), world.trace(),
                                    result.keys, result.detections);
  finish_result(result, world, simulator, injector.get());
  if (mode == ChargerMode::Benign) {
    result.ledger = benign->charger().ledger();
  } else {
    result.ledger = attacker->charger().ledger();
    result.plans_computed = attacker->plans_computed();
  }
  result.fleet_ledger = result.ledger;
  result.trace = std::move(world.trace());
  return result;
}

ScenarioResult run_fleet_scenario(const ScenarioConfig& config,
                                  std::size_t fleet_size,
                                  std::size_t compromised,
                                  const csa::Planner* planner) {
  WRSN_REQUIRE(fleet_size > 0, "fleet must have at least one charger");
  Rng rng(config.seed);
  Rng topo_rng = rng.fork("topology");
  net::Network network = net::generate_topology(config.topology, topo_rng);

  const std::vector<geom::Vec2> depots =
      mc::default_depots(config.topology.region, fleet_size);
  const std::vector<std::vector<net::NodeId>> cells =
      mc::partition_by_depot(network, depots);

  sim::Simulator simulator;
  sim::World world(simulator, std::move(network), config.world,
                   rng.fork("world"));

  ScenarioResult result;
  result.node_count = world.network().size();

  std::vector<std::unique_ptr<mc::ChargerAgent>> benign_agents;
  /// Benign agents by FLEET index (null at `compromised`), for the handoff.
  std::vector<mc::ChargerAgent*> benign_by_index(fleet_size, nullptr);
  std::unique_ptr<csa::AttackAgent> attacker;
  const csa::CsaPlanner default_planner;

  for (std::size_t k = 0; k < fleet_size; ++k) {
    if (k == compromised) {
      csa::AttackParams params = config.attack;
      params.charger.depot = depots[k];
      params.territory = cells[k];
      attacker = std::make_unique<csa::AttackAgent>(
          world, params, planner != nullptr ? *planner : default_planner,
          rng.fork("attack-" + std::to_string(k)), config.policy.attacker);
      attacker->start();
    } else {
      mc::AgentParams params = config.benign;
      params.charger.depot = depots[k];
      params.territory = cells[k];
      benign_agents.push_back(
          std::make_unique<mc::ChargerAgent>(world, params));
      benign_by_index[k] = benign_agents.back().get();
      benign_agents.back()->start();
    }
  }

  if (attacker != nullptr) {
    result.keys = attacker->key_targets();
  } else {
    result.keys = net::select_key_nodes(world.network(), world.loads(),
                                        config.attack.key_selection);
  }

  // Charger handoff: MC faults hit the compromised vehicle when present,
  // else fleet member 0 (mirroring arm_faults's hook routing).  On a
  // PERMANENT loss the victim's whole Voronoi cell — deliberately not
  // filtered by the alive mask, so the adopted set never depends on
  // sub-tolerance death-timing differences between world update modes; dead
  // nodes are inert in a territory set — is redistributed to the survivors
  // with the nearest depots (squared distance, ties to the lower fleet
  // index, exactly mc::nearest_depot's rule) and each survivor replans.
  std::function<void()> on_permanent_loss;
  if (fleet_size > 1) {
    const std::size_t victim = compromised < fleet_size ? compromised : 0;
    std::vector<geom::Vec2> survivor_depots;
    std::vector<std::size_t> survivor_ids;
    for (std::size_t k = 0; k < fleet_size; ++k) {
      if (k == victim) continue;
      survivor_depots.push_back(depots[k]);
      survivor_ids.push_back(k);
    }
    on_permanent_loss = [&world, victim, compromised,
                         survivor_depots = std::move(survivor_depots),
                         survivor_ids = std::move(survivor_ids),
                         lost_cell = cells[victim], benign_by_index,
                         attacker_ptr = attacker.get()] {
      std::vector<std::vector<net::NodeId>> adopted(survivor_ids.size());
      for (const net::NodeId id : lost_cell) {
        adopted[mc::nearest_depot(world.network().node(id).position,
                                  survivor_depots)]
            .push_back(id);
      }
      for (std::size_t s = 0; s < survivor_ids.size(); ++s) {
        if (adopted[s].empty()) continue;
        const std::size_t k = survivor_ids[s];
        if (k == compromised) {
          attacker_ptr->adopt_territory(adopted[s]);
        } else {
          benign_by_index[k]->adopt_territory(adopted[s]);
        }
      }
      WRSN_OBS_COUNT(kFleetHandoffs);
      WRSN_OBS_ADD(kFleetHandoffNodes, double(lost_cell.size()));
    };
  }

  const std::unique_ptr<fault::FaultInjector> injector = arm_faults(
      config, world, rng,
      benign_agents.empty() ? nullptr : benign_agents.front().get(),
      attacker.get(), std::move(on_permanent_loss));

  simulator.run_until(config.horizon);

  const DetectorSetup detectors = make_detector_setup(config, world);
  result.detections = detectors.suite.run(world.trace(), detectors.context);
  result.report = csa::build_report(world.network(), world.trace(),
                                    result.keys, result.detections);
  finish_result(result, world, simulator, injector.get());
  if (attacker != nullptr) {
    result.ledger = attacker->charger().ledger();
    result.plans_computed = attacker->plans_computed();
  } else if (!benign_agents.empty()) {
    result.ledger = benign_agents.front()->charger().ledger();
  }
  const auto fold_ledger = [&result](const mc::EnergyLedger& l) {
    result.fleet_ledger.travel += l.travel;
    result.fleet_ledger.radiated_genuine += l.radiated_genuine;
    result.fleet_ledger.radiated_spoofed += l.radiated_spoofed;
    result.fleet_ledger.drawn_for_radiation += l.drawn_for_radiation;
  };
  for (const auto& agent : benign_agents) fold_ledger(agent->charger().ledger());
  if (attacker != nullptr) fold_ledger(attacker->charger().ledger());
  result.trace = std::move(world.trace());
  return result;
}

ScenarioResult run_mission(const ScenarioConfig& config, ChargerMode mode,
                           const csa::Planner* planner) {
  const std::size_t fleet = config.fleet_size;
  if (fleet <= 1) return run_scenario(config, mode, planner);
  const std::size_t compromised =
      mode == ChargerMode::Attack
          ? std::min(config.fleet_compromised, fleet - 1)
          : SIZE_MAX;
  return run_fleet_scenario(config, fleet, compromised, planner);
}

}  // namespace wrsn::analysis
