#include "analysis/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace wrsn::analysis {

Table& Table::headers(std::vector<std::string> names) {
  headers_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  WRSN_REQUIRE(headers_.empty() || cells.size() == headers_.size(),
               "row width does not match headers");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  const auto widen = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  os << "== " << title_ << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size()) {
        os << std::string(widths[i] - cells[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    print_row(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

void Table::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  if (!headers_.empty()) print_row(headers_);
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

std::string fmt(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string fmt_ci(double mean, double ci, int digits) {
  return fmt(mean, digits) + " +- " + fmt(ci, digits);
}

}  // namespace wrsn::analysis
