// Scenario configuration files: a minimal INI-style loader so experiments
// can be described declaratively and run from the CLI without recompiling.
//
// Format: `key = value` lines, `#` comments, optional `[section]` headers
// (sections are cosmetic; keys are globally unique, dotted):
//
//   # my_experiment.ini
//   topology.node_count = 200
//   topology.comm_range = 46
//   world.patience      = 7200
//   attack.pace_limit   = 2
//   horizon             = 432000
//   seed                = 7
//
// Unknown keys throw (catching typos beats silently ignoring them).
#pragma once

#include <istream>
#include <map>
#include <string>

#include "analysis/scenario.hpp"

namespace wrsn::analysis {

/// Parses INI text into a flat key->value map.  Throws ConfigError on
/// malformed lines.
std::map<std::string, std::string> parse_ini(std::istream& in);

/// Applies `entries` on top of `base` (unset keys keep base values).
/// Throws ConfigError on unknown keys or unparsable values.
ScenarioConfig apply_config(const ScenarioConfig& base,
                            const std::map<std::string, std::string>& entries);

/// Convenience: parse + apply over default_scenario().
ScenarioConfig load_config(std::istream& in);

/// Loads a config file from disk; throws ConfigError if unreadable.
ScenarioConfig load_config_file(const std::string& path);

}  // namespace wrsn::analysis
