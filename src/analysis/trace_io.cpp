#include "analysis/trace_io.hpp"

#include <fstream>
#include <ostream>

#include "common/check.hpp"

namespace wrsn::analysis {

void write_sessions_csv(std::ostream& os, const sim::Trace& trace) {
  os << "node,start_s,end_s,kind,expected_J,delivered_J,rf_observed_W,"
        "rf_neighbor_probe_W,nearest_probe_m,radiated_J\n";
  for (const sim::SessionRecord& s : trace.sessions) {
    os << s.node << ',' << s.start << ',' << s.end << ','
       << (s.kind == sim::SessionKind::Spoofed ? "spoofed" : "genuine") << ','
       << s.expected_gain << ',' << s.delivered << ',' << s.rf_observed << ','
       << s.rf_neighbor_probe << ',' << s.nearest_probe_distance << ','
       << s.radiated << '\n';
  }
  os.flush();
}

void write_requests_csv(std::ostream& os, const sim::Trace& trace) {
  os << "node,time_s,level_J,emergency\n";
  for (const sim::RequestRecord& r : trace.requests) {
    os << r.node << ',' << r.time << ',' << r.level_at_request << ','
       << (r.emergency ? 1 : 0) << '\n';
  }
  os.flush();
}

void write_deaths_csv(std::ostream& os, const sim::Trace& trace) {
  os << "node,time_s,request_outstanding\n";
  for (const sim::DeathRecord& d : trace.deaths) {
    os << d.node << ',' << d.time << ',' << (d.request_outstanding ? 1 : 0)
       << '\n';
  }
  os.flush();
}

void write_escalations_csv(std::ostream& os, const sim::Trace& trace) {
  os << "node,time_s\n";
  for (const sim::EscalationRecord& e : trace.escalations) {
    os << e.node << ',' << e.time << '\n';
  }
  os.flush();
}

void export_trace(const std::string& prefix, const sim::Trace& trace) {
  const auto open = [&](const std::string& suffix) {
    std::ofstream file(prefix + suffix);
    if (!file.is_open()) {
      throw SimulationError("export_trace: cannot open " + prefix + suffix);
    }
    return file;
  };
  {
    std::ofstream file = open("_sessions.csv");
    write_sessions_csv(file, trace);
  }
  {
    std::ofstream file = open("_requests.csv");
    write_requests_csv(file, trace);
  }
  {
    std::ofstream file = open("_deaths.csv");
    write_deaths_csv(file, trace);
  }
  {
    std::ofstream file = open("_escalations.csv");
    write_escalations_csv(file, trace);
  }
}

}  // namespace wrsn::analysis
