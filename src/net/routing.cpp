#include "net/routing.hpp"

#include <limits>
#include <queue>

#include "common/check.hpp"

namespace wrsn::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool alive_or_all(const std::vector<bool>& alive, NodeId id) {
  return alive.empty() || alive[id];
}

}  // namespace

RoutingTree build_routing_tree(const Network& network,
                               const std::vector<bool>& alive,
                               const RoutingParams& params) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(alive.empty() || alive.size() == n, "alive mask size mismatch");
  WRSN_REQUIRE(params.hop_cost >= 0.0, "negative hop cost");

  RoutingTree tree;
  tree.parent.assign(n, kInvalidNode);
  tree.reachable.assign(n, false);
  tree.uplink_distance.assign(n, 0.0);
  tree.path_cost.assign(n, kInf);

  using Entry = std::pair<double, NodeId>;  // (cost, node), min-heap
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  // Seed with direct sink uplinks.
  for (const NodeId id : network.sink_neighbors()) {
    if (!alive_or_all(alive, id)) continue;
    const Meters d = network.distance_to_sink(id);
    const double cost = params.hop_cost + d * d;
    if (cost < tree.path_cost[id]) {
      tree.path_cost[id] = cost;
      tree.uplink_distance[id] = d;
      heap.emplace(cost, id);
    }
  }

  std::vector<bool> settled(n, false);
  while (!heap.empty()) {
    const auto [cost, u] = heap.top();
    heap.pop();
    if (settled[u] || cost > tree.path_cost[u]) continue;
    settled[u] = true;
    tree.reachable[u] = true;
    tree.settle_order.push_back(u);
    for (const NodeId v : network.neighbors(u)) {
      if (!alive_or_all(alive, v) || settled[v]) continue;
      const Meters d = network.distance(u, v);
      const double next = cost + params.hop_cost + d * d;
      if (next < tree.path_cost[v]) {
        tree.path_cost[v] = next;
        tree.parent[v] = u;
        tree.uplink_distance[v] = d;
        heap.emplace(next, v);
      }
    }
  }
  return tree;
}

TrafficLoads compute_loads(const Network& network, const RoutingTree& tree,
                           const std::vector<bool>& alive) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(tree.parent.size() == n, "tree does not match network");

  TrafficLoads loads;
  loads.tx_bps.assign(n, 0.0);
  loads.rx_bps.assign(n, 0.0);

  // Process leaves-first: settle_order is sink-outward, so its reverse is a
  // valid topological order for child-to-parent aggregation.
  for (auto it = tree.settle_order.rbegin(); it != tree.settle_order.rend();
       ++it) {
    const NodeId u = *it;
    if (!alive_or_all(alive, u)) continue;
    loads.tx_bps[u] += network.node(u).data_rate_bps;
    const NodeId p = tree.parent[u];
    if (p != kInvalidNode) {
      loads.rx_bps[p] += loads.tx_bps[u];
      loads.tx_bps[p] += loads.tx_bps[u];
    }
  }
  return loads;
}

std::vector<Watts> compute_drain_rates(const Network& network,
                                       const RoutingTree& tree,
                                       const TrafficLoads& loads,
                                       const DrainParams& params) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(loads.tx_bps.size() == n, "loads do not match network");
  WRSN_REQUIRE(params.sensing_power >= 0.0, "negative sensing power");

  const energy::RadioModel radio(params.radio);
  std::vector<Watts> drain(n, 0.0);
  for (NodeId id = 0; id < n; ++id) {
    drain[id] = params.sensing_power;
    if (!tree.reachable[id]) continue;
    drain[id] += radio.tx_power(loads.tx_bps[id], tree.uplink_distance[id]);
    drain[id] += radio.rx_power(loads.rx_bps[id]);
  }
  return drain;
}

}  // namespace wrsn::net
