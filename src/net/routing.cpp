#include "net/routing.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace wrsn::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool alive_or_all(const Bitmap& alive, NodeId id) {
  return alive.empty() || alive.test(id);
}

using FrontierEntry = std::pair<double, NodeId>;  // (cost, node), min-heap

void frontier_push(std::vector<FrontierEntry>& heap, FrontierEntry entry) {
  heap.push_back(entry);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

FrontierEntry frontier_pop(std::vector<FrontierEntry>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  const FrontierEntry entry = heap.back();
  heap.pop_back();
  return entry;
}

}  // namespace

void RoutingScratch::reserve(std::size_t n, std::size_t edges) {
  heap.reserve(edges + n + 1);
  settled.assign(n, false);
  affected.reserve(n);
  affected_ids.reserve(n);
  repaired_order.reserve(n);
  merged_order.reserve(n);
  children.reserve(n);
}

void rebuild_routing_tree(const Network& network, const Bitmap& alive,
                          const RoutingParams& params, RoutingTree& tree,
                          RoutingScratch& scratch) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(alive.empty() || alive.size() == n, "alive mask size mismatch");
  WRSN_REQUIRE(params.hop_cost >= 0.0, "negative hop cost");

  tree.parent.assign(n, kInvalidNode);
  tree.reachable.assign(n, false);
  tree.uplink_distance.assign(n, 0.0);
  tree.path_cost.assign(n, kInf);
  tree.settle_order.clear();

  std::vector<FrontierEntry>& heap = scratch.heap;
  heap.clear();

  // Seed with direct sink uplinks.
  for (const NodeId id : network.sink_neighbors()) {
    if (!alive_or_all(alive, id)) continue;
    const Meters d = network.distance_to_sink(id);
    const double cost = params.hop_cost + d * d;
    if (cost < tree.path_cost[id]) {
      tree.path_cost[id] = cost;
      tree.uplink_distance[id] = d;
      frontier_push(heap, {cost, id});
    }
  }

  scratch.settled.assign(n, false);
  while (!heap.empty()) {
    const auto [cost, u] = frontier_pop(heap);
    if (scratch.settled[u] || cost > tree.path_cost[u]) continue;
    scratch.settled.set(u);
    tree.reachable.set(u);
    tree.settle_order.push_back(u);
    const auto nbrs = network.neighbors(u);
    const auto dist = network.neighbor_distances(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const NodeId v = nbrs[k];
      if (!alive_or_all(alive, v) || scratch.settled[v]) continue;
      const Meters d = dist[k];
      const double next = cost + params.hop_cost + d * d;
      if (next < tree.path_cost[v]) {
        tree.path_cost[v] = next;
        tree.parent[v] = u;
        tree.uplink_distance[v] = d;
        frontier_push(heap, {next, v});
      }
    }
  }
}

RoutingTree build_routing_tree(const Network& network, const Bitmap& alive,
                               const RoutingParams& params) {
  RoutingTree tree;
  RoutingScratch scratch;
  rebuild_routing_tree(network, alive, params, tree, scratch);
  return tree;
}

bool repair_routing_after_death(const Network& network, const Bitmap& alive,
                                const RoutingParams& params, NodeId dead,
                                RoutingTree& tree, RoutingScratch& scratch,
                                double max_affected_fraction) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(tree.parent.size() == n, "tree does not match network");
  WRSN_REQUIRE(alive.size() == n, "repair requires an explicit alive mask");
  WRSN_REQUIRE(dead < n && !alive[dead], "dead node must be cleared in mask");

  if (!tree.reachable[dead]) {
    // The dead node routed nothing; no other node's path can change.
    tree.parent[dead] = kInvalidNode;
    tree.uplink_distance[dead] = 0.0;
    tree.path_cost[dead] = kInf;
    return true;
  }

  // 1. Affected set = the dead node's routing subtree.  settle_order is a
  // parent-before-child topological order, so one forward pass finds it.
  scratch.affected.assign(n, 0);
  scratch.affected[dead] = 1;
  scratch.affected_ids.clear();
  for (const NodeId u : tree.settle_order) {
    if (u == dead) continue;
    const NodeId p = tree.parent[u];
    if (p != kInvalidNode && scratch.affected[p] != 0) {
      scratch.affected[u] = 1;
      scratch.affected_ids.push_back(u);
    }
  }
  const std::size_t reachable_count = tree.settle_order.size();
  if (double(scratch.affected_ids.size() + 1) >
      max_affected_fraction * double(reachable_count)) {
    return false;  // big blast radius: a full rebuild is cheaper
  }

  // 2. Detach the subtree (and the dead node) back to the unreachable state.
  tree.reachable.reset(dead);
  tree.parent[dead] = kInvalidNode;
  tree.uplink_distance[dead] = 0.0;
  tree.path_cost[dead] = kInf;
  for (const NodeId u : scratch.affected_ids) {
    tree.reachable.reset(u);
    tree.parent[u] = kInvalidNode;
    tree.uplink_distance[u] = 0.0;
    tree.path_cost[u] = kInf;
  }

  // 3. Seed each subtree node from the surviving frontier: its best direct
  // sink uplink or unaffected settled neighbour.  Paths through unaffected
  // nodes cannot improve (removing a node never shortens a path), so the
  // repair Dijkstra only needs to relax edges inside the affected set.
  std::vector<FrontierEntry>& heap = scratch.heap;
  heap.clear();
  for (const NodeId u : scratch.affected_ids) {
    double best = kInf;
    NodeId best_parent = kInvalidNode;
    Meters best_distance = 0.0;
    if (network.sink_reachable(u)) {
      const Meters d = network.distance_to_sink(u);
      best = params.hop_cost + d * d;
      best_distance = d;
    }
    const auto nbrs = network.neighbors(u);
    const auto dist = network.neighbor_distances(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const NodeId v = nbrs[k];
      if (!alive[v] || scratch.affected[v] != 0 || !tree.reachable[v]) {
        continue;
      }
      const Meters d = dist[k];
      const double cost = tree.path_cost[v] + params.hop_cost + d * d;
      if (cost < best) {
        best = cost;
        best_parent = v;
        best_distance = d;
      }
    }
    if (best < kInf) {
      tree.path_cost[u] = best;
      tree.parent[u] = best_parent;
      tree.uplink_distance[u] = best_distance;
      frontier_push(heap, {best, u});
    }
  }

  // 4. Dijkstra restricted to the affected set; `reachable` doubles as the
  // settled mark (unaffected nodes are settled by construction).
  scratch.repaired_order.clear();
  while (!heap.empty()) {
    const auto [cost, u] = frontier_pop(heap);
    if (tree.reachable[u] || cost > tree.path_cost[u]) continue;
    tree.reachable.set(u);
    scratch.repaired_order.push_back(u);
    const auto nbrs = network.neighbors(u);
    const auto dist = network.neighbor_distances(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const NodeId v = nbrs[k];
      if (!alive[v] || scratch.affected[v] == 0 || tree.reachable[v]) {
        continue;
      }
      const Meters d = dist[k];
      const double next = cost + params.hop_cost + d * d;
      if (next < tree.path_cost[v]) {
        tree.path_cost[v] = next;
        tree.parent[v] = u;
        tree.uplink_distance[v] = d;
        frontier_push(heap, {next, v});
      }
    }
  }

  // 5. Merge the settle order: survivors keep their relative order (their
  // costs are untouched) and repaired nodes — re-settled in ascending
  // (cost, id) order, the same total order a full Dijkstra pops in — are
  // spliced in by (cost, id).  Subtree nodes that stayed unreachable are
  // simply dropped, exactly as a full rebuild would.
  const auto less_by_cost = [&tree](NodeId a, NodeId b) {
    if (tree.path_cost[a] != tree.path_cost[b]) {
      return tree.path_cost[a] < tree.path_cost[b];
    }
    return a < b;
  };
  scratch.merged_order.clear();
  auto it = scratch.repaired_order.begin();
  const auto end = scratch.repaired_order.end();
  for (const NodeId u : tree.settle_order) {
    if (u == dead || scratch.affected[u] != 0) continue;
    while (it != end && less_by_cost(*it, u)) {
      scratch.merged_order.push_back(*it++);
    }
    scratch.merged_order.push_back(u);
  }
  while (it != end) scratch.merged_order.push_back(*it++);
  tree.settle_order.swap(scratch.merged_order);
  return true;
}

void recompute_loads(const Network& network, const RoutingTree& tree,
                     const Bitmap& alive, TrafficLoads& loads) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(tree.parent.size() == n, "tree does not match network");

  loads.tx_bps.assign(n, 0.0);
  loads.rx_bps.assign(n, 0.0);

  // Process leaves-first: settle_order is sink-outward, so its reverse is a
  // valid topological order for child-to-parent aggregation.
  for (auto it = tree.settle_order.rbegin(); it != tree.settle_order.rend();
       ++it) {
    const NodeId u = *it;
    if (!alive_or_all(alive, u)) continue;
    loads.tx_bps[u] += network.node(u).data_rate_bps;
    const NodeId p = tree.parent[u];
    if (p != kInvalidNode) {
      loads.rx_bps[p] += loads.tx_bps[u];
      loads.tx_bps[p] += loads.tx_bps[u];
    }
  }
}

TrafficLoads compute_loads(const Network& network, const RoutingTree& tree,
                           const Bitmap& alive) {
  TrafficLoads loads;
  recompute_loads(network, tree, alive, loads);
  return loads;
}

void update_loads_after_repair(const Network& network, const RoutingTree& tree,
                               const NodeId dead, const NodeId old_parent,
                               RoutingScratch& scratch, TrafficLoads& loads,
                               std::vector<NodeId>& touched) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(loads.tx_bps.size() == n && loads.rx_bps.size() == n,
               "loads do not match network");

  // Touched set = the nodes whose aggregated traffic can differ from before
  // the death: the dead node, its old subtree (scratch.affected, still set
  // from the repair), and — since a changed transmit rate propagates to the
  // parent — the ancestor chain above every new attachment point.  Parents
  // of unaffected nodes are unaffected (the affected set is closed under
  // "child of"), so each chain stays outside the subtree and the walk stops
  // at the first node already marked.
  touched.push_back(dead);
  for (const NodeId u : scratch.affected_ids) touched.push_back(u);
  const auto walk_chain = [&](NodeId x) {
    while (x != kInvalidNode && scratch.affected[x] == 0) {
      scratch.affected[x] = 1;
      touched.push_back(x);
      x = tree.parent[x];
    }
  };
  walk_chain(old_parent);
  for (const NodeId u : scratch.repaired_order) walk_chain(tree.parent[u]);

  // Recompute the touched nodes leaves-first in descending (path_cost, id):
  // with strictly positive edge costs the settle order IS ascending
  // (path_cost, id) — the assumption the repair's settle-order merge already
  // makes — so this is exactly the full reverse settle-order walk restricted
  // to the touched set, and every floating-point sum is reproduced in the
  // same order.  Unreachable cost is +inf, so detached nodes sort first and
  // are simply zeroed.
  const auto greater_by_cost = [&tree](NodeId a, NodeId b) {
    if (tree.path_cost[a] != tree.path_cost[b]) {
      return tree.path_cost[a] > tree.path_cost[b];
    }
    return a > b;
  };
  std::sort(touched.begin(), touched.end(), greater_by_cost);
  for (const NodeId u : touched) {
    if (!tree.reachable[u]) {
      loads.tx_bps[u] = 0.0;
      loads.rx_bps[u] = 0.0;
      continue;
    }
    // A child not in the touched set kept its old (still bitwise-valid)
    // transmit rate; touched children were recomputed above (they sort
    // strictly before their parent).
    scratch.children.clear();
    for (const NodeId v : network.neighbors(u)) {
      if (tree.parent[v] == u && tree.reachable[v]) {
        scratch.children.push_back(v);
      }
    }
    std::sort(scratch.children.begin(), scratch.children.end(),
              greater_by_cost);
    double rx = 0.0;
    for (const NodeId c : scratch.children) rx += loads.tx_bps[c];
    loads.rx_bps[u] = rx;
    loads.tx_bps[u] = rx + network.node(u).data_rate_bps;
  }
  std::sort(touched.begin(), touched.end());
}

void recompute_drain_rates(const Network& network, const RoutingTree& tree,
                           const TrafficLoads& loads,
                           const DrainParams& params,
                           std::vector<Watts>& drain) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(loads.tx_bps.size() == n, "loads do not match network");
  WRSN_REQUIRE(params.sensing_power >= 0.0, "negative sensing power");

  const energy::RadioModel radio(params.radio);
  drain.assign(n, 0.0);
  for (NodeId id = 0; id < n; ++id) {
    drain[id] = params.sensing_power;
    if (!tree.reachable[id]) continue;
    drain[id] += radio.tx_power(loads.tx_bps[id], tree.uplink_distance[id]);
    drain[id] += radio.rx_power(loads.rx_bps[id]);
  }
}

std::vector<Watts> compute_drain_rates(const Network& network,
                                       const RoutingTree& tree,
                                       const TrafficLoads& loads,
                                       const DrainParams& params) {
  std::vector<Watts> drain;
  recompute_drain_rates(network, tree, loads, params, drain);
  return drain;
}

}  // namespace wrsn::net
