// Sink-rooted routing tree, traffic aggregation, and node drain rates.
//
// Routing uses energy-aware Dijkstra: the per-bit cost of relaying one hop
// over distance d is 2*e_elec + e_amp*d^2, so edge weight = hop_cost + d^2
// with hop_cost = 2*e_elec/e_amp.  Traffic is aggregated up the tree to get
// each node's transmit/receive rates, which combined with the first-order
// radio model and the sensing floor give the per-node battery drain rate —
// the quantity the attacker's time-window calculations are built on.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "energy/radio.hpp"
#include "net/network.hpp"

namespace wrsn::net {

/// Routing cost parameters.
struct RoutingParams {
  /// Distance-squared-equivalent cost of one hop [m^2]; default matches
  /// 2*e_elec/e_amp of the first-order radio model.
  double hop_cost = 1'000.0;
};

/// Sink-rooted shortest-path tree over the alive subgraph.
struct RoutingTree {
  /// Parent node id; kInvalidNode when the node uplinks directly to the sink
  /// or is unreachable (see `reachable`).
  std::vector<NodeId> parent;
  /// True when the node has a path to the sink.
  std::vector<bool> reachable;
  /// Distance to the parent (or to the sink for direct uplinks) [m].
  std::vector<Meters> uplink_distance;
  /// Reachable nodes in ascending path-cost order (sink outward).
  std::vector<NodeId> settle_order;
  /// Path cost from the sink [m^2-equivalent]; +inf when unreachable.
  std::vector<double> path_cost;
};

/// Builds the routing tree over nodes with `alive[id]` set (empty = all).
RoutingTree build_routing_tree(const Network& network,
                               const std::vector<bool>& alive = {},
                               const RoutingParams& params = {});

/// Per-node steady-state traffic after aggregation up the tree [bit/s].
struct TrafficLoads {
  std::vector<double> tx_bps;  ///< own generation + forwarded
  std::vector<double> rx_bps;  ///< forwarded (received from children)
};

/// Aggregates application traffic up the routing tree.  Unreachable nodes
/// carry no traffic (their data has nowhere to go).
TrafficLoads compute_loads(const Network& network, const RoutingTree& tree,
                           const std::vector<bool>& alive = {});

/// Drain-rate model parameters.
struct DrainParams {
  /// Always-on sensing/MCU floor [W].
  Watts sensing_power = 2e-3;
  energy::RadioParams radio;
};

/// Per-node battery drain rate [W]: sensing floor + radio tx/rx power.
/// Unreachable nodes pay only the sensing floor.
std::vector<Watts> compute_drain_rates(const Network& network,
                                       const RoutingTree& tree,
                                       const TrafficLoads& loads,
                                       const DrainParams& params = {});

}  // namespace wrsn::net
