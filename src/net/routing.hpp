// Sink-rooted routing tree, traffic aggregation, and node drain rates.
//
// Routing uses energy-aware Dijkstra: the per-bit cost of relaying one hop
// over distance d is 2*e_elec + e_amp*d^2, so edge weight = hop_cost + d^2
// with hop_cost = 2*e_elec/e_amp.  Traffic is aggregated up the tree to get
// each node's transmit/receive rates, which combined with the first-order
// radio model and the sensing floor give the per-node battery drain rate —
// the quantity the attacker's time-window calculations are built on.
//
// Two API tiers:
//   * value-returning helpers (build_routing_tree, compute_loads,
//     compute_drain_rates) allocate fresh results — fine for one-shot use;
//   * in-place variants (rebuild_routing_tree, recompute_loads,
//     recompute_drain_rates) refill caller-owned buffers through a reusable
//     RoutingScratch, so steady-state rebuilds allocate nothing, and
//     repair_routing_after_death patches an existing tree after a single
//     node death by re-running Dijkstra only over the dead node's routing
//     subtree (the only region whose shortest paths can change).
#pragma once

#include <utility>
#include <vector>

#include "common/bitset.hpp"
#include "common/units.hpp"
#include "energy/radio.hpp"
#include "net/network.hpp"

namespace wrsn::net {

/// Routing cost parameters.
struct RoutingParams {
  /// Distance-squared-equivalent cost of one hop [m^2]; default matches
  /// 2*e_elec/e_amp of the first-order radio model.
  double hop_cost = 1'000.0;
};

/// Sink-rooted shortest-path tree over the alive subgraph.
struct RoutingTree {
  /// Parent node id; kInvalidNode when the node uplinks directly to the sink
  /// or is unreachable (see `reachable`).
  std::vector<NodeId> parent;
  /// True when the node has a path to the sink.
  Bitmap reachable;
  /// Distance to the parent (or to the sink for direct uplinks) [m].
  std::vector<Meters> uplink_distance;
  /// Reachable nodes in ascending path-cost order (sink outward).
  std::vector<NodeId> settle_order;
  /// Path cost from the sink [m^2-equivalent]; +inf when unreachable.
  std::vector<double> path_cost;
};

/// Reusable working memory for routing rebuilds and repairs.  Keeping one of
/// these per World means zero allocations per rebuild after warmup.
struct RoutingScratch {
  std::vector<std::pair<double, NodeId>> heap;  ///< Dijkstra frontier
  Bitmap settled;                               ///< full-rebuild settle marks
  std::vector<char> affected;                   ///< repair: subtree mask
  std::vector<NodeId> affected_ids;             ///< repair: subtree members
  std::vector<NodeId> repaired_order;           ///< repair: re-settle order
  std::vector<NodeId> merged_order;             ///< repair: merged settle order
  std::vector<NodeId> children;                 ///< loads update: child sort

  /// Pre-sizes every buffer for a network of `n` nodes with `edges` adjacency
  /// entries (directed count), so later rebuilds never allocate.
  void reserve(std::size_t n, std::size_t edges);
};

/// Builds the routing tree over nodes with `alive[id]` set (empty = all).
RoutingTree build_routing_tree(const Network& network,
                               const Bitmap& alive = {},
                               const RoutingParams& params = {});

/// In-place full rebuild of `tree` (same result as build_routing_tree);
/// reuses the capacity of `tree`'s vectors and `scratch`.
void rebuild_routing_tree(const Network& network, const Bitmap& alive,
                          const RoutingParams& params, RoutingTree& tree,
                          RoutingScratch& scratch);

/// Patches `tree` in place after node `dead` (already cleared in `alive`)
/// died, by re-running Dijkstra over the dead node's routing subtree seeded
/// from the surviving frontier.  Produces the same tree a full rebuild would
/// (identical parents, costs, and settle order, up to exact-cost ties).
/// Returns false without touching `tree` when the affected subtree exceeds
/// `max_affected_fraction` of the reachable nodes — the caller should fall
/// back to rebuild_routing_tree, which is cheaper at that size.
bool repair_routing_after_death(const Network& network, const Bitmap& alive,
                                const RoutingParams& params, NodeId dead,
                                RoutingTree& tree, RoutingScratch& scratch,
                                double max_affected_fraction = 0.25);

/// Per-node steady-state traffic after aggregation up the tree [bit/s].
struct TrafficLoads {
  std::vector<double> tx_bps;  ///< own generation + forwarded
  std::vector<double> rx_bps;  ///< forwarded (received from children)
};

/// Aggregates application traffic up the routing tree.  Unreachable nodes
/// carry no traffic (their data has nowhere to go).
TrafficLoads compute_loads(const Network& network, const RoutingTree& tree,
                           const Bitmap& alive = {});

/// In-place variant of compute_loads; reuses `loads`' capacity.
void recompute_loads(const Network& network, const RoutingTree& tree,
                     const Bitmap& alive, TrafficLoads& loads);

/// After a successful repair_routing_after_death, patches `loads` in place
/// touching only the nodes whose aggregated traffic could have changed:
/// the dead node, its old routing subtree, and the ancestor chains of every
/// new attachment point (the dead node's former parent plus each repaired
/// node's new parent).  Every touched node's loads are recomputed exactly —
/// children summed in descending (path_cost, id) order, the restriction of
/// the full reverse settle-order walk to the touched set — so the result is
/// bitwise identical to a full recompute_loads.  Relies on strictly positive
/// edge costs (settle order == ascending (path_cost, id)), the same
/// assumption the repair's settle-order merge already makes.
///
/// `old_parent` is the dead node's parent BEFORE the repair (the repair
/// resets it); `scratch` must be the one the repair just used (its affected
/// mask and repaired order are consumed, and its mask is extended with the
/// ancestor chains).  Appends the touched ids to `touched`, sorted ascending.
void update_loads_after_repair(const Network& network, const RoutingTree& tree,
                               NodeId dead, NodeId old_parent,
                               RoutingScratch& scratch, TrafficLoads& loads,
                               std::vector<NodeId>& touched);

/// Drain-rate model parameters.
struct DrainParams {
  /// Always-on sensing/MCU floor [W].
  Watts sensing_power = 2e-3;
  energy::RadioParams radio;
};

/// Per-node battery drain rate [W]: sensing floor + radio tx/rx power.
/// Unreachable nodes pay only the sensing floor.
std::vector<Watts> compute_drain_rates(const Network& network,
                                       const RoutingTree& tree,
                                       const TrafficLoads& loads,
                                       const DrainParams& params = {});

/// In-place variant of compute_drain_rates; reuses `drain`'s capacity.
void recompute_drain_rates(const Network& network, const RoutingTree& tree,
                           const TrafficLoads& loads,
                           const DrainParams& params,
                           std::vector<Watts>& drain);

}  // namespace wrsn::net
