#include "net/coverage.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/check.hpp"

namespace wrsn::net {

void CoverageParams::validate() const {
  if (radius < 0.0) throw ConfigError("coverage radius must be >= 0");
  if (bonus < 0.0) throw ConfigError("coverage bonus must be >= 0");
}

void CoverageIndex::build(const Network& network, const Bitmap& alive,
                          Meters radius) {
  WRSN_REQUIRE(radius > 0.0, "coverage radius must be positive");
  radius_ = radius;
  const std::size_t n = network.size();

  geom::Vec2 lo = network.node(0).position;
  geom::Vec2 hi = lo;
  for (const SensorSpec& s : network.nodes()) {
    lo.x = std::min(lo.x, s.position.x);
    lo.y = std::min(lo.y, s.position.y);
    hi.x = std::max(hi.x, s.position.x);
    hi.y = std::max(hi.y, s.position.y);
  }
  origin_ = lo;
  Meters cell = radius_;
  const auto dims = [&](Meters side) {
    const std::size_t cx = static_cast<std::size_t>((hi.x - lo.x) / side) + 1;
    const std::size_t cy = static_cast<std::size_t>((hi.y - lo.y) / side) + 1;
    return std::pair{cx, cy};
  };
  auto [nx, ny] = dims(cell);
  const std::size_t max_cells = 4 * n + 64;
  while (nx * ny > max_cells) {
    cell *= 2.0;
    std::tie(nx, ny) = dims(cell);
  }
  cell_ = cell;
  nx_ = nx;
  ny_ = ny;

  const auto cell_xy = [&](geom::Vec2 p) {
    const auto cx = static_cast<std::size_t>((p.x - origin_.x) / cell_);
    const auto cy = static_cast<std::size_t>((p.y - origin_.y) / cell_);
    return std::pair{std::min(cx, nx_ - 1), std::min(cy, ny_ - 1)};
  };

  cell_start_.assign(nx_ * ny_ + 1, 0);
  for (const SensorSpec& s : network.nodes()) {
    const auto [cx, cy] = cell_xy(s.position);
    ++cell_start_[cy * nx_ + cx + 1];
  }
  for (std::size_t c = 0; c < nx_ * ny_; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  cell_cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  cell_items_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_xy(network.node(NodeId(i)).position);
    cell_items_[cell_cursor_[cy * nx_ + cx]++] = static_cast<NodeId>(i);
  }

  counts_.assign(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    const geom::Vec2 p = network.node(NodeId(j)).position;
    const auto [cx, cy] = cell_xy(p);
    const std::size_t x0 = cx > 0 ? cx - 1 : 0;
    const std::size_t x1 = std::min(cx + 1, nx_ - 1);
    const std::size_t y0 = cy > 0 ? cy - 1 : 0;
    const std::size_t y1 = std::min(cy + 1, ny_ - 1);
    std::uint32_t count = 0;
    for (std::size_t gy = y0; gy <= y1; ++gy) {
      for (std::size_t gx = x0; gx <= x1; ++gx) {
        const std::size_t c = gy * nx_ + gx;
        for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
          const NodeId i = cell_items_[k];
          if (i == static_cast<NodeId>(j) || !alive.test(i)) continue;
          if (geom::distance(p, network.node(i).position) <= radius_) {
            ++count;
          }
        }
      }
    }
    counts_[j] = count;
  }
}

void CoverageIndex::on_death(const Network& network, NodeId dead) {
  WRSN_REQUIRE(built(), "CoverageIndex::on_death before build");
  const geom::Vec2 p = network.node(dead).position;
  const auto cx = std::min(
      static_cast<std::size_t>((p.x - origin_.x) / cell_), nx_ - 1);
  const auto cy = std::min(
      static_cast<std::size_t>((p.y - origin_.y) / cell_), ny_ - 1);
  const std::size_t x0 = cx > 0 ? cx - 1 : 0;
  const std::size_t x1 = std::min(cx + 1, nx_ - 1);
  const std::size_t y0 = cy > 0 ? cy - 1 : 0;
  const std::size_t y1 = std::min(cy + 1, ny_ - 1);
  for (std::size_t gy = y0; gy <= y1; ++gy) {
    for (std::size_t gx = x0; gx <= x1; ++gx) {
      const std::size_t c = gy * nx_ + gx;
      for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const NodeId j = cell_items_[k];
        if (j == dead) continue;
        if (geom::distance(p, network.node(j).position) <= radius_) {
          WRSN_ASSERT(counts_[j] > 0);
          --counts_[j];
        }
      }
    }
  }
}

}  // namespace wrsn::net
