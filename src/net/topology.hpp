// Topology generators: deployments used by the evaluation.
//
// All generators guarantee the produced network is connected (every node can
// reach the sink over the unit-disk graph); generation retries with fresh
// randomness until connectivity holds and throws after a bounded number of
// attempts so misconfigured densities fail loudly instead of looping.
#pragma once

#include <cstddef>

#include "common/bitset.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"

namespace wrsn::net {

enum class Deployment {
  Uniform,   ///< independent uniform positions in the region
  Grid,      ///< jittered grid covering the region
  Clustered, ///< Gaussian clusters plus a uniform background sprinkle
  Corridor,  ///< nodes strung along crossing road-like bands
};

/// Parameters shared by all generators.
struct TopologyConfig {
  geom::Rect region{{0.0, 0.0}, {100.0, 100.0}};
  std::size_t node_count = 100;
  Meters comm_range = 20.0;
  Deployment deployment = Deployment::Uniform;

  /// Sink location; defaults to the region center when `sink_at_center`.
  bool sink_at_center = true;
  geom::Vec2 sink_position;

  /// Mean application data rate [bit/s]; per node drawn uniform in
  /// [0.5, 1.5] x mean.
  double mean_data_rate_bps = 2'000.0;

  /// Node battery capacity [J].
  Joules battery_capacity = 10'800.0;

  /// Minimum pairwise node separation [m]; 0 disables the check.
  Meters min_separation = 1.0;

  /// Number of Gaussian clusters (Clustered deployment only).
  std::size_t cluster_count = 4;

  /// Cluster standard deviation as a fraction of the region diagonal.
  double cluster_sigma_fraction = 0.06;

  /// Fraction of nodes sprinkled uniformly instead of into clusters.
  double cluster_background_fraction = 0.2;

  /// Number of bands (Corridor deployment only).  Corridors alternate
  /// horizontal / vertical: the first ceil(count/2) are horizontal at
  /// heights (i + 0.5) / nh, the rest vertical.  For counts 1-3 one band
  /// always passes through the region center, so a centered sink sits on a
  /// corridor; larger counts may need an explicit sink_position to connect.
  std::size_t corridor_count = 3;

  /// Heterogeneous node classes.  Each node draws a class c uniformly in
  /// [0, class_count); class c scales battery capacity by
  /// 1 + (class_capacity_ratio - 1) * c / (class_count - 1) and the drawn
  /// data rate by the same ramp on class_rate_ratio.  class_count = 1 (the
  /// default) is homogeneous and draws no extra randomness, so existing
  /// seeded topologies are unchanged.
  std::size_t class_count = 1;
  double class_capacity_ratio = 1.0;
  double class_rate_ratio = 1.0;

  /// Attempts before generation gives up with SimulationError.
  std::size_t max_attempts = 64;

  void validate() const;
};

/// Generates a connected network according to `config`.
/// Throws SimulationError if no connected deployment is found within
/// `max_attempts` (density too low for the requested comm_range).
Network generate_topology(const TopologyConfig& config, Rng& rng);

/// True if every node can reach the sink over the unit-disk graph,
/// considering only nodes with `alive[id]` set (alive may be empty = all).
bool is_connected(const Network& network, const Bitmap& alive = {});

/// Number of alive nodes that can reach the sink.
std::size_t count_sink_connected(const Network& network,
                                 const Bitmap& alive = {});

}  // namespace wrsn::net
