// Key-node analysis: which nodes is the network most vulnerable to losing?
//
// The attack paper targets "key nodes" — nodes whose exhaustion partitions
// the network or removes a disproportionate share of delivered traffic.  Two
// selection rules are provided (and compared in the fig5 bench):
//
//  * Articulation: cut vertices of the alive communication graph (computed
//    with Tarjan's algorithm over the graph including the sink), ranked by
//    how many nodes their death disconnects from the sink.
//  * TopTraffic: nodes carrying the highest aggregated traffic.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitset.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"

namespace wrsn::net {

enum class KeyNodeRule {
  Articulation,  ///< cut vertices only (may yield fewer than max_count)
  TopTraffic,    ///< highest aggregated traffic
  Hybrid,        ///< cut vertices first, then top-traffic fill to max_count
};

struct KeyNodeConfig {
  KeyNodeRule rule = KeyNodeRule::Articulation;
  /// At most this many key nodes are selected.
  std::size_t max_count = 10;
  /// Articulation rule: ignore cut vertices that disconnect fewer than this
  /// many nodes (noise filtering).
  std::size_t min_disconnect = 1;
};

/// Scored key-node candidate.
struct KeyNodeInfo {
  NodeId id = kInvalidNode;
  /// Nodes that lose sink connectivity if this node dies (0 for non-cuts).
  std::size_t disconnect_count = 0;
  /// Aggregated traffic this node carries [bit/s].
  double traffic_bps = 0.0;
};

/// Articulation points of the alive communication graph including the sink,
/// i.e. nodes whose removal disconnects some alive node from the sink.
std::vector<NodeId> articulation_points(const Network& network,
                                        const Bitmap& alive = {});

/// Ranks every alive node by (disconnect_count, traffic) descending.
/// `loads` may be empty, in which case traffic is treated as zero.
std::vector<KeyNodeInfo> rank_key_nodes(const Network& network,
                                        const TrafficLoads& loads,
                                        const Bitmap& alive = {});

/// Selects the attack target set according to `config`.
std::vector<NodeId> select_key_nodes(const Network& network,
                                     const TrafficLoads& loads,
                                     const KeyNodeConfig& config,
                                     const Bitmap& alive = {});

}  // namespace wrsn::net
