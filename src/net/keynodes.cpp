#include "net/keynodes.hpp"

#include <algorithm>
#include <stack>

#include "common/check.hpp"
#include "net/topology.hpp"

namespace wrsn::net {
namespace {

bool alive_or_all(const Bitmap& alive, NodeId id) {
  return alive.empty() || alive.test(id);
}

// Adjacency view over the alive subgraph with the sink as virtual vertex n.
class AliveGraph {
 public:
  AliveGraph(const Network& network, const Bitmap& alive)
      : network_(network), alive_(alive) {}

  std::size_t vertex_count() const { return network_.size() + 1; }
  std::size_t sink_vertex() const { return network_.size(); }

  bool present(std::size_t v) const {
    return v == sink_vertex() || alive_or_all(alive_, static_cast<NodeId>(v));
  }

  template <typename Fn>
  void for_each_neighbor(std::size_t v, Fn&& fn) const {
    if (v == sink_vertex()) {
      for (const NodeId u : network_.sink_neighbors()) {
        if (present(u)) fn(static_cast<std::size_t>(u));
      }
      return;
    }
    const auto id = static_cast<NodeId>(v);
    for (const NodeId u : network_.neighbors(id)) {
      if (present(u)) fn(static_cast<std::size_t>(u));
    }
    if (network_.sink_reachable(id)) fn(sink_vertex());
  }

 private:
  const Network& network_;
  const Bitmap& alive_;
};

// Iterative Tarjan articulation-point computation (recursion-free so deep
// chain topologies cannot overflow the stack).
std::vector<bool> tarjan_articulation(const AliveGraph& graph) {
  const std::size_t n = graph.vertex_count();
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, -1);
  std::vector<bool> is_cut(n, false);

  struct Frame {
    std::size_t vertex;
    std::size_t parent;
    std::vector<std::size_t> neighbors;
    std::size_t next_index = 0;
    int child_count = 0;
  };

  int timer = 0;
  for (std::size_t root = 0; root < n; ++root) {
    if (!graph.present(root) || disc[root] != -1) continue;

    std::stack<Frame> stack;
    const auto push_vertex = [&](std::size_t v, std::size_t parent) {
      disc[v] = low[v] = timer++;
      Frame frame;
      frame.vertex = v;
      frame.parent = parent;
      graph.for_each_neighbor(
          v, [&](std::size_t u) { frame.neighbors.push_back(u); });
      stack.push(std::move(frame));
    };

    push_vertex(root, n);  // n = no parent sentinel
    while (!stack.empty()) {
      Frame& frame = stack.top();
      if (frame.next_index < frame.neighbors.size()) {
        const std::size_t u = frame.neighbors[frame.next_index++];
        if (u == frame.parent) continue;
        if (disc[u] == -1) {
          ++frame.child_count;
          push_vertex(u, frame.vertex);
        } else {
          low[frame.vertex] = std::min(low[frame.vertex], disc[u]);
        }
        continue;
      }
      // Frame finished: propagate low-link to the parent frame.
      const Frame done = std::move(frame);
      stack.pop();
      if (!stack.empty()) {
        Frame& parent_frame = stack.top();
        low[parent_frame.vertex] =
            std::min(low[parent_frame.vertex], low[done.vertex]);
        if (low[done.vertex] >= disc[parent_frame.vertex] &&
            parent_frame.parent != n) {
          is_cut[parent_frame.vertex] = true;
        }
      } else if (done.child_count > 1) {
        is_cut[done.vertex] = true;  // root with 2+ DFS children
      }
    }
  }
  return is_cut;
}

}  // namespace

std::vector<NodeId> articulation_points(const Network& network,
                                        const Bitmap& alive) {
  WRSN_REQUIRE(alive.empty() || alive.size() == network.size(),
               "alive mask size mismatch");
  const AliveGraph graph(network, alive);
  const std::vector<bool> is_cut = tarjan_articulation(graph);

  std::vector<NodeId> cuts;
  for (NodeId id = 0; id < network.size(); ++id) {
    if (alive_or_all(alive, id) && is_cut[id]) cuts.push_back(id);
  }
  return cuts;
}

std::vector<KeyNodeInfo> rank_key_nodes(const Network& network,
                                        const TrafficLoads& loads,
                                        const Bitmap& alive) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(loads.tx_bps.empty() || loads.tx_bps.size() == n,
               "loads do not match network");

  // Only articulation points can have nonzero disconnect counts; compute the
  // exact count for each by re-running sink reachability without the node.
  const std::vector<NodeId> cuts = articulation_points(network, alive);
  const std::size_t base_connected = count_sink_connected(network, alive);

  std::vector<std::size_t> disconnects(n, 0);
  Bitmap mask = alive;
  if (mask.empty()) mask.assign(n, true);
  for (const NodeId cut : cuts) {
    mask.reset(cut);
    const std::size_t connected = count_sink_connected(network, mask);
    mask.set(cut);
    // The cut node itself leaves the connected set; anything beyond that is
    // collateral disconnection.
    const std::size_t lost = base_connected - connected;
    disconnects[cut] = lost > 0 ? lost - 1 : 0;
  }

  std::vector<KeyNodeInfo> ranked;
  ranked.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    if (!alive_or_all(alive, id)) continue;
    KeyNodeInfo info;
    info.id = id;
    info.disconnect_count = disconnects[id];
    info.traffic_bps = loads.tx_bps.empty() ? 0.0 : loads.tx_bps[id];
    ranked.push_back(info);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const KeyNodeInfo& a, const KeyNodeInfo& b) {
              if (a.disconnect_count != b.disconnect_count) {
                return a.disconnect_count > b.disconnect_count;
              }
              if (a.traffic_bps != b.traffic_bps) {
                return a.traffic_bps > b.traffic_bps;
              }
              return a.id < b.id;
            });
  return ranked;
}

std::vector<NodeId> select_key_nodes(const Network& network,
                                     const TrafficLoads& loads,
                                     const KeyNodeConfig& config,
                                     const Bitmap& alive) {
  WRSN_REQUIRE(config.max_count > 0, "max_count must be > 0");
  std::vector<KeyNodeInfo> ranked = rank_key_nodes(network, loads, alive);

  if (config.rule == KeyNodeRule::TopTraffic) {
    std::sort(ranked.begin(), ranked.end(),
              [](const KeyNodeInfo& a, const KeyNodeInfo& b) {
                if (a.traffic_bps != b.traffic_bps) {
                  return a.traffic_bps > b.traffic_bps;
                }
                return a.id < b.id;
              });
  }

  std::vector<NodeId> selected;
  for (const KeyNodeInfo& info : ranked) {
    if (selected.size() >= config.max_count) break;
    if (config.rule == KeyNodeRule::Articulation &&
        info.disconnect_count < config.min_disconnect) {
      break;  // ranked descending; nothing later qualifies either
    }
    if (config.rule == KeyNodeRule::Hybrid &&
        info.disconnect_count < config.min_disconnect) {
      break;  // cut-vertex phase done; traffic fill happens below
    }
    selected.push_back(info.id);
  }

  if (config.rule == KeyNodeRule::Hybrid && selected.size() < config.max_count) {
    // Fill the remainder with the highest-traffic nodes not yet selected.
    std::vector<KeyNodeInfo> by_traffic = ranked;
    std::sort(by_traffic.begin(), by_traffic.end(),
              [](const KeyNodeInfo& a, const KeyNodeInfo& b) {
                if (a.traffic_bps != b.traffic_bps) {
                  return a.traffic_bps > b.traffic_bps;
                }
                return a.id < b.id;
              });
    for (const KeyNodeInfo& info : by_traffic) {
      if (selected.size() >= config.max_count) break;
      if (std::find(selected.begin(), selected.end(), info.id) ==
          selected.end()) {
        selected.push_back(info.id);
      }
    }
  }
  return selected;
}

}  // namespace wrsn::net
