#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.hpp"

namespace wrsn::net {
namespace {

geom::Vec2 uniform_point(const geom::Rect& region, Rng& rng) {
  return {rng.uniform(region.lo.x, region.hi.x),
          rng.uniform(region.lo.y, region.hi.y)};
}

bool respects_separation(const std::vector<geom::Vec2>& placed,
                         geom::Vec2 candidate, Meters min_sep) {
  if (min_sep <= 0.0) return true;
  return std::none_of(placed.begin(), placed.end(), [&](geom::Vec2 p) {
    return geom::distance(p, candidate) < min_sep;
  });
}

std::vector<geom::Vec2> place_uniform(const TopologyConfig& cfg, Rng& rng) {
  std::vector<geom::Vec2> points;
  points.reserve(cfg.node_count);
  // Bounded rejection sampling for min separation; falls back to accepting
  // the candidate if the region is too crowded to honor the separation.
  while (points.size() < cfg.node_count) {
    geom::Vec2 candidate = uniform_point(cfg.region, rng);
    for (int tries = 0;
         tries < 32 && !respects_separation(points, candidate, cfg.min_separation);
         ++tries) {
      candidate = uniform_point(cfg.region, rng);
    }
    points.push_back(candidate);
  }
  return points;
}

std::vector<geom::Vec2> place_grid(const TopologyConfig& cfg, Rng& rng) {
  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(double(cfg.node_count))));
  const Meters dx = cfg.region.width() / double(side);
  const Meters dy = cfg.region.height() / double(side);
  std::vector<geom::Vec2> points;
  points.reserve(cfg.node_count);
  for (std::size_t r = 0; r < side && points.size() < cfg.node_count; ++r) {
    for (std::size_t c = 0; c < side && points.size() < cfg.node_count; ++c) {
      const geom::Vec2 cell_center{cfg.region.lo.x + (double(c) + 0.5) * dx,
                                   cfg.region.lo.y + (double(r) + 0.5) * dy};
      const geom::Vec2 jitter{rng.uniform(-0.25 * dx, 0.25 * dx),
                              rng.uniform(-0.25 * dy, 0.25 * dy)};
      points.push_back(cell_center + jitter);
    }
  }
  return points;
}

std::vector<geom::Vec2> place_clustered(const TopologyConfig& cfg, Rng& rng) {
  const double diag = std::hypot(cfg.region.width(), cfg.region.height());
  const Meters sigma = cfg.cluster_sigma_fraction * diag;
  std::vector<geom::Vec2> centers;
  centers.reserve(cfg.cluster_count);
  for (std::size_t i = 0; i < cfg.cluster_count; ++i) {
    centers.push_back(uniform_point(cfg.region, rng));
  }

  std::vector<geom::Vec2> points;
  points.reserve(cfg.node_count);
  const auto background = static_cast<std::size_t>(
      std::round(cfg.cluster_background_fraction * double(cfg.node_count)));
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    if (i < background || centers.empty()) {
      points.push_back(uniform_point(cfg.region, rng));
      continue;
    }
    const geom::Vec2 center =
        centers[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(centers.size()) - 1))];
    geom::Vec2 p{rng.normal(center.x, sigma), rng.normal(center.y, sigma)};
    p.x = std::clamp(p.x, cfg.region.lo.x, cfg.region.hi.x);
    p.y = std::clamp(p.y, cfg.region.lo.y, cfg.region.hi.y);
    points.push_back(p);
  }
  return points;
}

Network build_network(const TopologyConfig& cfg,
                      const std::vector<geom::Vec2>& points, Rng& rng) {
  std::vector<SensorSpec> nodes;
  nodes.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SensorSpec spec;
    spec.id = static_cast<NodeId>(i);
    spec.position = points[i];
    spec.data_rate_bps =
        rng.uniform(0.5 * cfg.mean_data_rate_bps, 1.5 * cfg.mean_data_rate_bps);
    spec.battery_capacity = cfg.battery_capacity;
    nodes.push_back(spec);
  }
  const geom::Vec2 sink =
      cfg.sink_at_center ? cfg.region.center() : cfg.sink_position;
  return Network(std::move(nodes), sink, cfg.comm_range);
}

}  // namespace

void TopologyConfig::validate() const {
  if (node_count == 0) throw ConfigError("node_count must be > 0");
  if (comm_range <= 0.0) throw ConfigError("comm_range must be > 0");
  if (region.width() <= 0.0 || region.height() <= 0.0) {
    throw ConfigError("deployment region must have positive area");
  }
  if (mean_data_rate_bps < 0.0) throw ConfigError("negative data rate");
  if (battery_capacity <= 0.0) throw ConfigError("battery capacity must be > 0");
  if (max_attempts == 0) throw ConfigError("max_attempts must be > 0");
  if (!sink_at_center && !region.contains(sink_position)) {
    throw ConfigError("sink_position outside the deployment region");
  }
}

Network generate_topology(const TopologyConfig& config, Rng& rng) {
  config.validate();
  for (std::size_t attempt = 0; attempt < config.max_attempts; ++attempt) {
    std::vector<geom::Vec2> points;
    switch (config.deployment) {
      case Deployment::Uniform: points = place_uniform(config, rng); break;
      case Deployment::Grid: points = place_grid(config, rng); break;
      case Deployment::Clustered: points = place_clustered(config, rng); break;
    }
    Network net = build_network(config, points, rng);
    if (is_connected(net)) return net;
  }
  throw SimulationError(
      "generate_topology: no connected deployment found; increase comm_range "
      "or node density");
}

std::size_t count_sink_connected(const Network& network, const Bitmap& alive) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(alive.empty() || alive.size() == n,
               "alive mask size mismatch");
  const auto is_alive = [&](NodeId id) {
    return alive.empty() || alive.test(id);
  };

  Bitmap visited(n, false);
  std::queue<NodeId> frontier;
  for (const NodeId id : network.sink_neighbors()) {
    if (is_alive(id) && !visited[id]) {
      visited.set(id);
      frontier.push(id);
    }
  }
  std::size_t reached = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    ++reached;
    for (const NodeId v : network.neighbors(u)) {
      if (is_alive(v) && !visited[v]) {
        visited.set(v);
        frontier.push(v);
      }
    }
  }
  return reached;
}

bool is_connected(const Network& network, const Bitmap& alive) {
  const std::size_t alive_count =
      alive.empty() ? network.size() : alive.count();
  return count_sink_connected(network, alive) == alive_count;
}

}  // namespace wrsn::net
