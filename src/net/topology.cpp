#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.hpp"

namespace wrsn::net {
namespace {

geom::Vec2 uniform_point(const geom::Rect& region, Rng& rng) {
  return {rng.uniform(region.lo.x, region.hi.x),
          rng.uniform(region.lo.y, region.hi.y)};
}

// Grid-bucketed index answering "is any accepted point within min_sep of
// this candidate?" in O(1) expected time, so 10k-node deployments don't pay
// the old O(placed) scan per candidate.  It evaluates the exact predicate
// the linear scan used (distance < min_sep), so every accept/reject
// decision — and therefore the RNG draw sequence and the resulting
// topology — is unchanged.
class SeparationIndex {
 public:
  SeparationIndex(const geom::Rect& region, Meters min_sep,
                  std::size_t expected)
      : min_sep_(min_sep) {
    if (min_sep_ <= 0.0) return;
    origin_ = region.lo;
    // Target ~1 point per cell, but never below min_sep: cells at least
    // min_sep wide keep the 3x3 stencil sufficient.
    cell_ = std::max(min_sep_,
                     std::sqrt(region.width() * region.height() /
                               double(std::max<std::size_t>(expected, 1))));
    nx_ = static_cast<std::size_t>(region.width() / cell_) + 1;
    ny_ = static_cast<std::size_t>(region.height() / cell_) + 1;
    heads_.assign(nx_ * ny_, -1);
    points_.reserve(expected);
    next_.reserve(expected);
  }

  bool ok(geom::Vec2 candidate) const {
    if (min_sep_ <= 0.0) return true;
    const auto [cx, cy] = cell_of(candidate);
    const std::size_t x0 = cx > 0 ? cx - 1 : 0;
    const std::size_t x1 = std::min(cx + 1, nx_ - 1);
    const std::size_t y0 = cy > 0 ? cy - 1 : 0;
    const std::size_t y1 = std::min(cy + 1, ny_ - 1);
    for (std::size_t gy = y0; gy <= y1; ++gy) {
      for (std::size_t gx = x0; gx <= x1; ++gx) {
        for (std::int32_t k = heads_[gy * nx_ + gx]; k >= 0; k = next_[k]) {
          if (geom::distance(points_[k], candidate) < min_sep_) return false;
        }
      }
    }
    return true;
  }

  void insert(geom::Vec2 p) {
    if (min_sep_ <= 0.0) return;
    const auto [cx, cy] = cell_of(p);
    points_.push_back(p);
    next_.push_back(heads_[cy * nx_ + cx]);
    heads_[cy * nx_ + cx] = static_cast<std::int32_t>(points_.size()) - 1;
  }

 private:
  std::pair<std::size_t, std::size_t> cell_of(geom::Vec2 p) const {
    const auto cx = static_cast<std::size_t>(
        std::max(0.0, (p.x - origin_.x) / cell_));
    const auto cy = static_cast<std::size_t>(
        std::max(0.0, (p.y - origin_.y) / cell_));
    return {std::min(cx, nx_ - 1), std::min(cy, ny_ - 1)};
  }

  Meters min_sep_ = 0.0;
  geom::Vec2 origin_;
  Meters cell_ = 1.0;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  std::vector<std::int32_t> heads_;
  std::vector<std::int32_t> next_;
  std::vector<geom::Vec2> points_;
};

std::vector<geom::Vec2> place_uniform(const TopologyConfig& cfg, Rng& rng) {
  std::vector<geom::Vec2> points;
  points.reserve(cfg.node_count);
  SeparationIndex sep(cfg.region, cfg.min_separation, cfg.node_count);
  // Bounded rejection sampling for min separation; falls back to accepting
  // the candidate if the region is too crowded to honor the separation.
  while (points.size() < cfg.node_count) {
    geom::Vec2 candidate = uniform_point(cfg.region, rng);
    for (int tries = 0; tries < 32 && !sep.ok(candidate); ++tries) {
      candidate = uniform_point(cfg.region, rng);
    }
    sep.insert(candidate);
    points.push_back(candidate);
  }
  return points;
}

std::vector<geom::Vec2> place_corridor(const TopologyConfig& cfg, Rng& rng) {
  const std::size_t count = cfg.corridor_count;
  const std::size_t nh = (count + 1) / 2;  // horizontal bands
  const std::size_t nv = count - nh;       // vertical bands
  const Meters band = 0.1 * std::min(cfg.region.width(), cfg.region.height());
  const auto corridor_point = [&] {
    const auto c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(count) - 1));
    geom::Vec2 p;
    if (c < nh) {
      const Meters yc = cfg.region.lo.y +
                        (double(c) + 0.5) * cfg.region.height() / double(nh);
      p.x = rng.uniform(cfg.region.lo.x, cfg.region.hi.x);
      p.y = std::clamp(yc + rng.uniform(-0.5 * band, 0.5 * band),
                       cfg.region.lo.y, cfg.region.hi.y);
    } else {
      const Meters xc = cfg.region.lo.x +
                        (double(c - nh) + 0.5) * cfg.region.width() / double(nv);
      p.y = rng.uniform(cfg.region.lo.y, cfg.region.hi.y);
      p.x = std::clamp(xc + rng.uniform(-0.5 * band, 0.5 * band),
                       cfg.region.lo.x, cfg.region.hi.x);
    }
    return p;
  };
  std::vector<geom::Vec2> points;
  points.reserve(cfg.node_count);
  SeparationIndex sep(cfg.region, cfg.min_separation, cfg.node_count);
  while (points.size() < cfg.node_count) {
    geom::Vec2 candidate = corridor_point();
    for (int tries = 0; tries < 32 && !sep.ok(candidate); ++tries) {
      candidate = corridor_point();
    }
    sep.insert(candidate);
    points.push_back(candidate);
  }
  return points;
}

std::vector<geom::Vec2> place_grid(const TopologyConfig& cfg, Rng& rng) {
  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(double(cfg.node_count))));
  const Meters dx = cfg.region.width() / double(side);
  const Meters dy = cfg.region.height() / double(side);
  std::vector<geom::Vec2> points;
  points.reserve(cfg.node_count);
  for (std::size_t r = 0; r < side && points.size() < cfg.node_count; ++r) {
    for (std::size_t c = 0; c < side && points.size() < cfg.node_count; ++c) {
      const geom::Vec2 cell_center{cfg.region.lo.x + (double(c) + 0.5) * dx,
                                   cfg.region.lo.y + (double(r) + 0.5) * dy};
      const geom::Vec2 jitter{rng.uniform(-0.25 * dx, 0.25 * dx),
                              rng.uniform(-0.25 * dy, 0.25 * dy)};
      points.push_back(cell_center + jitter);
    }
  }
  return points;
}

std::vector<geom::Vec2> place_clustered(const TopologyConfig& cfg, Rng& rng) {
  const double diag = std::hypot(cfg.region.width(), cfg.region.height());
  const Meters sigma = cfg.cluster_sigma_fraction * diag;
  std::vector<geom::Vec2> centers;
  centers.reserve(cfg.cluster_count);
  for (std::size_t i = 0; i < cfg.cluster_count; ++i) {
    centers.push_back(uniform_point(cfg.region, rng));
  }

  std::vector<geom::Vec2> points;
  points.reserve(cfg.node_count);
  const auto background = static_cast<std::size_t>(
      std::round(cfg.cluster_background_fraction * double(cfg.node_count)));
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    if (i < background || centers.empty()) {
      points.push_back(uniform_point(cfg.region, rng));
      continue;
    }
    const geom::Vec2 center =
        centers[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(centers.size()) - 1))];
    geom::Vec2 p{rng.normal(center.x, sigma), rng.normal(center.y, sigma)};
    p.x = std::clamp(p.x, cfg.region.lo.x, cfg.region.hi.x);
    p.y = std::clamp(p.y, cfg.region.lo.y, cfg.region.hi.y);
    points.push_back(p);
  }
  return points;
}

Network build_network(const TopologyConfig& cfg,
                      const std::vector<geom::Vec2>& points, Rng& rng) {
  std::vector<SensorSpec> nodes;
  nodes.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SensorSpec spec;
    spec.id = static_cast<NodeId>(i);
    spec.position = points[i];
    spec.data_rate_bps =
        rng.uniform(0.5 * cfg.mean_data_rate_bps, 1.5 * cfg.mean_data_rate_bps);
    spec.battery_capacity = cfg.battery_capacity;
    if (cfg.class_count > 1) {
      // Heterogeneous classes: a linear ramp from factor 1 (class 0) to the
      // configured ratio (top class).  Guarded so the homogeneous default
      // draws nothing and leaves existing seeded topologies untouched.
      const double t =
          double(rng.uniform_int(
              0, static_cast<std::int64_t>(cfg.class_count) - 1)) /
          double(cfg.class_count - 1);
      spec.battery_capacity *= 1.0 + (cfg.class_capacity_ratio - 1.0) * t;
      spec.data_rate_bps *= 1.0 + (cfg.class_rate_ratio - 1.0) * t;
    }
    nodes.push_back(spec);
  }
  const geom::Vec2 sink =
      cfg.sink_at_center ? cfg.region.center() : cfg.sink_position;
  return Network(std::move(nodes), sink, cfg.comm_range);
}

}  // namespace

void TopologyConfig::validate() const {
  if (node_count == 0) throw ConfigError("node_count must be > 0");
  if (comm_range <= 0.0) throw ConfigError("comm_range must be > 0");
  if (region.width() <= 0.0 || region.height() <= 0.0) {
    throw ConfigError("deployment region must have positive area");
  }
  if (mean_data_rate_bps < 0.0) throw ConfigError("negative data rate");
  if (battery_capacity <= 0.0) throw ConfigError("battery capacity must be > 0");
  if (max_attempts == 0) throw ConfigError("max_attempts must be > 0");
  if (corridor_count == 0) throw ConfigError("corridor_count must be > 0");
  if (class_count == 0) throw ConfigError("class_count must be > 0");
  if (class_capacity_ratio <= 0.0) {
    throw ConfigError("class_capacity_ratio must be > 0");
  }
  if (class_rate_ratio <= 0.0) {
    throw ConfigError("class_rate_ratio must be > 0");
  }
  if (!sink_at_center && !region.contains(sink_position)) {
    throw ConfigError("sink_position outside the deployment region");
  }
}

Network generate_topology(const TopologyConfig& config, Rng& rng) {
  config.validate();
  for (std::size_t attempt = 0; attempt < config.max_attempts; ++attempt) {
    std::vector<geom::Vec2> points;
    switch (config.deployment) {
      case Deployment::Uniform: points = place_uniform(config, rng); break;
      case Deployment::Grid: points = place_grid(config, rng); break;
      case Deployment::Clustered: points = place_clustered(config, rng); break;
      case Deployment::Corridor: points = place_corridor(config, rng); break;
    }
    Network net = build_network(config, points, rng);
    if (is_connected(net)) return net;
  }
  throw SimulationError(
      "generate_topology: no connected deployment found; increase comm_range "
      "or node density");
}

std::size_t count_sink_connected(const Network& network, const Bitmap& alive) {
  const std::size_t n = network.size();
  WRSN_REQUIRE(alive.empty() || alive.size() == n,
               "alive mask size mismatch");
  const auto is_alive = [&](NodeId id) {
    return alive.empty() || alive.test(id);
  };

  Bitmap visited(n, false);
  std::queue<NodeId> frontier;
  for (const NodeId id : network.sink_neighbors()) {
    if (is_alive(id) && !visited[id]) {
      visited.set(id);
      frontier.push(id);
    }
  }
  std::size_t reached = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    ++reached;
    for (const NodeId v : network.neighbors(u)) {
      if (is_alive(v) && !visited[v]) {
        visited.set(v);
        frontier.push(v);
      }
    }
  }
  return reached;
}

bool is_connected(const Network& network, const Bitmap& alive) {
  const std::size_t alive_count =
      alive.empty() ? network.size() : alive.count();
  return count_sink_connected(network, alive) == alive_count;
}

}  // namespace wrsn::net
