// Static description of a deployed wireless rechargeable sensor network:
// node positions, data rates, the sink, and the unit-disk communication graph.
//
// The Network is immutable after construction; live state (battery levels,
// alive flags) belongs to the simulation world, which passes alive masks into
// the routing and key-node routines.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "geom/vec2.hpp"

namespace wrsn::net {

using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Static properties of one sensor node.
struct SensorSpec {
  NodeId id = kInvalidNode;
  geom::Vec2 position;
  /// Application data generation rate [bit/s].
  double data_rate_bps = 0.0;
  /// Battery capacity [J].
  Joules battery_capacity = 10'800.0;
};

/// Immutable network description plus the precomputed unit-disk adjacency.
class Network {
 public:
  /// Builds the network and its communication graph.  Node ids must equal
  /// their index in `nodes` (enforced); `comm_range` > 0.
  Network(std::vector<SensorSpec> nodes, geom::Vec2 sink_position,
          Meters comm_range);

  std::size_t size() const { return nodes_.size(); }
  const SensorSpec& node(NodeId id) const;
  std::span<const SensorSpec> nodes() const { return nodes_; }
  geom::Vec2 sink_position() const { return sink_position_; }
  Meters comm_range() const { return comm_range_; }

  /// Node-to-node neighbours within communication range (excludes the sink).
  std::span<const NodeId> neighbors(NodeId id) const;

  /// True if `id` can talk directly to the sink.
  bool sink_reachable(NodeId id) const;

  /// Ids of all nodes within communication range of the sink.
  std::span<const NodeId> sink_neighbors() const { return sink_neighbors_; }

  /// Euclidean distance between two nodes.
  Meters distance(NodeId a, NodeId b) const;

  /// Euclidean distance from a node to the sink.
  Meters distance_to_sink(NodeId id) const;

 private:
  std::vector<SensorSpec> nodes_;
  geom::Vec2 sink_position_;
  Meters comm_range_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<NodeId> sink_neighbors_;
  std::vector<bool> sink_adjacent_;
};

}  // namespace wrsn::net
