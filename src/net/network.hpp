// Static description of a deployed wireless rechargeable sensor network:
// node positions, data rates, the sink, and the unit-disk communication graph.
//
// The Network is immutable after construction EXCEPT for the waypoint-
// mobility seam: set_position + rebuild_adjacency let the simulation world
// batch position updates on its mobility epochs and refresh the unit-disk
// graph in place (allocation-free after warmup).  Live state (battery
// levels, alive flags) belongs to the world, which passes alive masks into
// the routing and key-node routines.
//
// The adjacency build is grid-bucketed (cells >= comm_range, 3x3 stencil),
// O(N + edges) instead of the naive O(N^2) pairwise scan, which is what
// makes 10k-node deployments and per-epoch rebuilds affordable.  It emits
// the exact CSR the pairwise scan produced: neighbour lists ascending by id
// and every edge length computed with the same geom::distance expression
// (hypot is sign-symmetric, so the (i,j) and (j,i) entries agree bitwise).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "geom/vec2.hpp"

namespace wrsn::net {

using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Static properties of one sensor node.
struct SensorSpec {
  NodeId id = kInvalidNode;
  geom::Vec2 position;
  /// Application data generation rate [bit/s].
  double data_rate_bps = 0.0;
  /// Battery capacity [J].
  Joules battery_capacity = 10'800.0;
};

/// Immutable network description plus the precomputed unit-disk adjacency.
class Network {
 public:
  /// Builds the network and its communication graph.  Node ids must equal
  /// their index in `nodes` (enforced); `comm_range` > 0.
  Network(std::vector<SensorSpec> nodes, geom::Vec2 sink_position,
          Meters comm_range);

  std::size_t size() const { return nodes_.size(); }
  const SensorSpec& node(NodeId id) const;
  std::span<const SensorSpec> nodes() const { return nodes_; }
  geom::Vec2 sink_position() const { return sink_position_; }
  Meters comm_range() const { return comm_range_; }

  /// Node-to-node neighbours within communication range (excludes the sink).
  std::span<const NodeId> neighbors(NodeId id) const;

  /// Euclidean distances to the same neighbours, index-aligned with
  /// neighbors(id).  Precomputed at construction with the exact expression
  /// distance(id, v) uses, so the routing inner loops read a contiguous lane
  /// instead of recomputing a hypot per edge relaxation.
  std::span<const Meters> neighbor_distances(NodeId id) const;

  /// True if `id` can talk directly to the sink.
  bool sink_reachable(NodeId id) const;

  /// Ids of all nodes within communication range of the sink.
  std::span<const NodeId> sink_neighbors() const { return sink_neighbors_; }

  /// Euclidean distance between two nodes.
  Meters distance(NodeId a, NodeId b) const;

  /// Euclidean distance from a node to the sink.
  Meters distance_to_sink(NodeId id) const;

  /// Moves one node (waypoint-mobility seam).  Does NOT touch the adjacency:
  /// the caller batches all position updates for an epoch and then calls
  /// rebuild_adjacency() once.
  void set_position(NodeId id, geom::Vec2 position);

  /// Rebuilds the CSR adjacency and the sink tables in place from the
  /// current node positions.  Allocation-free once the internal buffers have
  /// reached their high-water sizes, so the world's mobility epochs can call
  /// it on the steady-state path.
  void rebuild_adjacency();

 private:
  void build_adjacency();

  std::vector<SensorSpec> nodes_;
  geom::Vec2 sink_position_;
  Meters comm_range_;
  // Adjacency in CSR form: node id's neighbours are adj_nodes_[adj_offset_
  // [id] .. adj_offset_[id+1]), with the matching edge length in adj_dist_
  // at the same index.  One flat allocation each, so the Dijkstra
  // relaxations walk two contiguous lanes instead of chasing a per-node
  // vector and recomputing a hypot per edge.
  std::vector<std::uint32_t> adj_offset_;
  std::vector<NodeId> adj_nodes_;
  std::vector<Meters> adj_dist_;
  std::vector<NodeId> sink_neighbors_;
  std::vector<bool> sink_adjacent_;
  std::vector<Meters> sink_distance_;
  // Grid-bucket scratch for build_adjacency, persistent so per-epoch
  // rebuilds under mobility are allocation-free after warmup.
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_cursor_;
  std::vector<NodeId> cell_items_;
  std::vector<std::uint32_t> degree_;
};

}  // namespace wrsn::net
