// k-coverage index: how many alive sensors cover each node's region.
//
// The k-coverage utility mode (Optimal k-Coverage Charging Problem,
// PAPERS.md) makes a node's charging utility depend on its redundancy: a
// node whose region is watched by fewer than k alive peers is more valuable
// to keep alive than one in a densely covered patch.  The index maintains,
// for every node, the number of OTHER alive nodes within the coverage
// radius.  The world rebuilds it from scratch on topology changes (initial
// construction, mobility epochs) and decrements incrementally on each
// death; both paths are exact integer counts over the same position
// snapshot, so Fast and Reference worlds — which retire nodes in the same
// order — always agree.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.hpp"
#include "common/units.hpp"
#include "net/network.hpp"

namespace wrsn::net {

/// k-coverage utility knobs (lives in WorldParams as `coverage`).
struct CoverageParams {
  /// Desired coverage degree; 0 disables the mode entirely.
  std::size_t k = 0;
  /// Coverage radius [m]; 0 means "use the network's comm_range".
  Meters radius = 0.0;
  /// Utility multiplier ramp: a node covered by c < k alive peers gets its
  /// charging utility scaled by 1 + bonus * (k - c) / k.
  double bonus = 1.0;

  void validate() const;
};

/// Alive-coverer counts per node, grid-bucketed for O(N + pairs) rebuilds.
class CoverageIndex {
 public:
  /// Recounts every node's alive coverers from the network's current
  /// positions.  Allocation-free once internal buffers reach their
  /// high-water sizes (mobility epochs call this on the steady-state path).
  void build(const Network& network, const Bitmap& alive, Meters radius);

  /// Incremental update for one death: every node within `radius` of the
  /// dead node loses one coverer.  Positions must be unchanged since the
  /// last build (the world rebuilds on every mobility epoch, and deaths
  /// never move nodes).
  void on_death(const Network& network, NodeId dead);

  /// Number of alive nodes (excluding `id` itself) within the coverage
  /// radius of `id` as of the last build/on_death.
  std::size_t coverers(NodeId id) const { return counts_[id]; }

  bool built() const { return !counts_.empty(); }

 private:
  Meters radius_ = 0.0;
  std::vector<std::uint32_t> counts_;
  // Grid over the positions at the last build (shared by on_death).
  geom::Vec2 origin_;
  Meters cell_ = 1.0;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_cursor_;
  std::vector<NodeId> cell_items_;
};

}  // namespace wrsn::net
