#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/check.hpp"

namespace wrsn::net {

Network::Network(std::vector<SensorSpec> nodes, geom::Vec2 sink_position,
                 Meters comm_range)
    : nodes_(std::move(nodes)),
      sink_position_(sink_position),
      comm_range_(comm_range) {
  WRSN_REQUIRE(comm_range_ > 0.0, "comm_range must be positive");
  WRSN_REQUIRE(!nodes_.empty(), "network must have at least one node");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    WRSN_REQUIRE(nodes_[i].id == static_cast<NodeId>(i),
                 "node ids must be dense and equal their index");
    WRSN_REQUIRE(nodes_[i].data_rate_bps >= 0.0, "negative data rate");
    WRSN_REQUIRE(nodes_[i].battery_capacity > 0.0,
                 "battery capacity must be positive");
  }
  build_adjacency();
}

void Network::build_adjacency() {
  const std::size_t n = nodes_.size();

  // Bucket nodes into a grid of square cells with side >= comm_range, so
  // every in-range neighbour of a node lives in the 3x3 stencil around its
  // cell.  Cell count is capped at ~4N so sparse giant regions don't blow
  // up the bucket arrays (a larger cell side stays correct, just scans a
  // few more candidates).
  geom::Vec2 lo = nodes_[0].position;
  geom::Vec2 hi = nodes_[0].position;
  for (const SensorSpec& s : nodes_) {
    lo.x = std::min(lo.x, s.position.x);
    lo.y = std::min(lo.y, s.position.y);
    hi.x = std::max(hi.x, s.position.x);
    hi.y = std::max(hi.y, s.position.y);
  }
  Meters cell = comm_range_;
  const auto dims = [&](Meters side) {
    const std::size_t nx =
        static_cast<std::size_t>((hi.x - lo.x) / side) + 1;
    const std::size_t ny =
        static_cast<std::size_t>((hi.y - lo.y) / side) + 1;
    return std::pair{nx, ny};
  };
  auto [nx, ny] = dims(cell);
  const std::size_t max_cells = 4 * n + 64;
  while (nx * ny > max_cells) {
    cell *= 2.0;
    std::tie(nx, ny) = dims(cell);
  }
  const std::size_t cells = nx * ny;
  const auto cell_of = [&](geom::Vec2 p) {
    std::size_t cx = static_cast<std::size_t>((p.x - lo.x) / cell);
    std::size_t cy = static_cast<std::size_t>((p.y - lo.y) / cell);
    cx = std::min(cx, nx - 1);
    cy = std::min(cy, ny - 1);
    return cy * nx + cx;
  };

  // Counting sort of node ids by cell.  Because ids are assigned in
  // ascending order within each bucket, a node's 3x3 candidate scan visits
  // each neighbouring cell's members in ascending id order.
  cell_start_.assign(cells + 1, 0);
  for (const SensorSpec& s : nodes_) ++cell_start_[cell_of(s.position) + 1];
  for (std::size_t c = 0; c < cells; ++c) cell_start_[c + 1] += cell_start_[c];
  cell_cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  cell_items_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell_items_[cell_cursor_[cell_of(nodes_[i].position)]++] =
        static_cast<NodeId>(i);
  }

  // Pass 1: degrees.  The distance predicate is the exact expression the
  // old O(N^2) scan used; geom::distance is sign-symmetric (hypot of the
  // component deltas), so evaluating it from both endpoints yields the
  // same bits and the CSR stays bitwise identical to the pairwise build.
  degree_.assign(n, 0);
  const auto for_each_in_range = [&](std::size_t i, auto&& fn) {
    const geom::Vec2 p = nodes_[i].position;
    std::size_t cx = static_cast<std::size_t>((p.x - lo.x) / cell);
    std::size_t cy = static_cast<std::size_t>((p.y - lo.y) / cell);
    cx = std::min(cx, nx - 1);
    cy = std::min(cy, ny - 1);
    const std::size_t x0 = cx > 0 ? cx - 1 : 0;
    const std::size_t x1 = std::min(cx + 1, nx - 1);
    const std::size_t y0 = cy > 0 ? cy - 1 : 0;
    const std::size_t y1 = std::min(cy + 1, ny - 1);
    for (std::size_t gy = y0; gy <= y1; ++gy) {
      for (std::size_t gx = x0; gx <= x1; ++gx) {
        const std::size_t c = gy * nx + gx;
        for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
          const NodeId j = cell_items_[k];
          if (j == static_cast<NodeId>(i)) continue;
          const Meters d = geom::distance(p, nodes_[j].position);
          if (d <= comm_range_) fn(j, d);
        }
      }
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    for_each_in_range(i, [&](NodeId, Meters) { ++degree_[i]; });
  }

  // Pass 2: CSR fill.  Each row gathers its candidates cell by cell, then
  // an in-place insertion sort restores ascending-id order (rows are short
  // — the unit-disk degree — so this beats allocating sort scratch).
  adj_offset_.resize(n + 1);
  adj_offset_[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    adj_offset_[i + 1] = adj_offset_[i] + degree_[i];
  }
  adj_nodes_.resize(adj_offset_[n]);
  adj_dist_.resize(adj_offset_[n]);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t row = adj_offset_[i];
    std::uint32_t len = 0;
    for_each_in_range(i, [&](NodeId j, Meters d) {
      std::uint32_t at = row + len;
      while (at > row && adj_nodes_[at - 1] > j) {
        adj_nodes_[at] = adj_nodes_[at - 1];
        adj_dist_[at] = adj_dist_[at - 1];
        --at;
      }
      adj_nodes_[at] = j;
      adj_dist_[at] = d;
      ++len;
    });
  }

  sink_adjacent_.assign(n, false);
  sink_distance_.resize(n);
  sink_neighbors_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Meters d = geom::distance(nodes_[i].position, sink_position_);
    sink_distance_[i] = d;
    if (d <= comm_range_) {
      sink_adjacent_[i] = true;
      sink_neighbors_.push_back(static_cast<NodeId>(i));
    }
  }
}

void Network::set_position(NodeId id, geom::Vec2 position) {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  nodes_[id].position = position;
}

void Network::rebuild_adjacency() { build_adjacency(); }

const SensorSpec& Network::node(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

std::span<const NodeId> Network::neighbors(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return {adj_nodes_.data() + adj_offset_[id],
          adj_nodes_.data() + adj_offset_[id + 1]};
}

std::span<const Meters> Network::neighbor_distances(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return {adj_dist_.data() + adj_offset_[id],
          adj_dist_.data() + adj_offset_[id + 1]};
}

bool Network::sink_reachable(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return sink_adjacent_[id];
}

Meters Network::distance(NodeId a, NodeId b) const {
  return geom::distance(node(a).position, node(b).position);
}

Meters Network::distance_to_sink(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return sink_distance_[id];
}

}  // namespace wrsn::net
