#include "net/network.hpp"

#include "common/check.hpp"

namespace wrsn::net {

Network::Network(std::vector<SensorSpec> nodes, geom::Vec2 sink_position,
                 Meters comm_range)
    : nodes_(std::move(nodes)),
      sink_position_(sink_position),
      comm_range_(comm_range) {
  WRSN_REQUIRE(comm_range_ > 0.0, "comm_range must be positive");
  WRSN_REQUIRE(!nodes_.empty(), "network must have at least one node");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    WRSN_REQUIRE(nodes_[i].id == static_cast<NodeId>(i),
                 "node ids must be dense and equal their index");
    WRSN_REQUIRE(nodes_[i].data_rate_bps >= 0.0, "negative data rate");
    WRSN_REQUIRE(nodes_[i].battery_capacity > 0.0,
                 "battery capacity must be positive");
  }

  adjacency_.resize(nodes_.size());
  sink_adjacent_.resize(nodes_.size(), false);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      if (geom::distance(nodes_[i].position, nodes_[j].position) <=
          comm_range_) {
        adjacency_[i].push_back(static_cast<NodeId>(j));
        adjacency_[j].push_back(static_cast<NodeId>(i));
      }
    }
    if (geom::distance(nodes_[i].position, sink_position_) <= comm_range_) {
      sink_adjacent_[i] = true;
      sink_neighbors_.push_back(static_cast<NodeId>(i));
    }
  }
}

const SensorSpec& Network::node(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

std::span<const NodeId> Network::neighbors(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return adjacency_[id];
}

bool Network::sink_reachable(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return sink_adjacent_[id];
}

Meters Network::distance(NodeId a, NodeId b) const {
  return geom::distance(node(a).position, node(b).position);
}

Meters Network::distance_to_sink(NodeId id) const {
  return geom::distance(node(id).position, sink_position_);
}

}  // namespace wrsn::net
