#include "net/network.hpp"

#include "common/check.hpp"

namespace wrsn::net {

Network::Network(std::vector<SensorSpec> nodes, geom::Vec2 sink_position,
                 Meters comm_range)
    : nodes_(std::move(nodes)),
      sink_position_(sink_position),
      comm_range_(comm_range) {
  WRSN_REQUIRE(comm_range_ > 0.0, "comm_range must be positive");
  WRSN_REQUIRE(!nodes_.empty(), "network must have at least one node");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    WRSN_REQUIRE(nodes_[i].id == static_cast<NodeId>(i),
                 "node ids must be dense and equal their index");
    WRSN_REQUIRE(nodes_[i].data_rate_bps >= 0.0, "negative data rate");
    WRSN_REQUIRE(nodes_[i].battery_capacity > 0.0,
                 "battery capacity must be positive");
  }

  const std::size_t n = nodes_.size();
  // Pass 1: in-range pairs (each distance computed once) and degrees.
  struct Edge {
    NodeId a;
    NodeId b;
    Meters d;
  };
  std::vector<Edge> edges;
  std::vector<std::uint32_t> degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Meters d =
          geom::distance(nodes_[i].position, nodes_[j].position);
      if (d <= comm_range_) {
        edges.push_back({static_cast<NodeId>(i), static_cast<NodeId>(j), d});
        ++degree[i];
        ++degree[j];
      }
    }
  }

  // Pass 2: CSR fill.  Edges were found in ascending (i, j) order, so
  // appending each endpoint's entry in discovery order reproduces the
  // ascending neighbour lists of the old per-node vectors exactly.
  adj_offset_.resize(n + 1);
  adj_offset_[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    adj_offset_[i + 1] = adj_offset_[i] + degree[i];
  }
  adj_nodes_.resize(adj_offset_[n]);
  adj_dist_.resize(adj_offset_[n]);
  std::vector<std::uint32_t> cursor(adj_offset_.begin(),
                                    adj_offset_.end() - 1);
  for (const Edge& e : edges) {
    adj_nodes_[cursor[e.a]] = e.b;
    adj_dist_[cursor[e.a]++] = e.d;
    adj_nodes_[cursor[e.b]] = e.a;
    adj_dist_[cursor[e.b]++] = e.d;
  }

  sink_adjacent_.resize(n, false);
  sink_distance_.resize(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Meters d = geom::distance(nodes_[i].position, sink_position_);
    sink_distance_[i] = d;
    if (d <= comm_range_) {
      sink_adjacent_[i] = true;
      sink_neighbors_.push_back(static_cast<NodeId>(i));
    }
  }
}

const SensorSpec& Network::node(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

std::span<const NodeId> Network::neighbors(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return {adj_nodes_.data() + adj_offset_[id],
          adj_nodes_.data() + adj_offset_[id + 1]};
}

std::span<const Meters> Network::neighbor_distances(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return {adj_dist_.data() + adj_offset_[id],
          adj_dist_.data() + adj_offset_[id + 1]};
}

bool Network::sink_reachable(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return sink_adjacent_[id];
}

Meters Network::distance(NodeId a, NodeId b) const {
  return geom::distance(node(a).position, node(b).position);
}

Meters Network::distance_to_sink(NodeId id) const {
  WRSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return sink_distance_[id];
}

}  // namespace wrsn::net
