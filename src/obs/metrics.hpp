// Deterministic metrics + tracing layer.
//
// A `MetricRegistry` holds counters, max-gauges, and fixed-bucket histograms
// for one unit of work (typically one trial).  Instrumented code never talks
// to a registry directly: it goes through the `WRSN_OBS_*` macros, which
// write to the thread-local *current* registry installed by a
// `ScopedRegistry` — or do nothing when none is installed.  With
// `WRSN_OBS=0` the macros compile to `((void)0)` and the instrumentation
// vanishes from the binary entirely.
//
// Determinism contract (pinned by obs_test):
//
//   * every metric except wall-clock timers is a pure function of the
//     simulated work, so two runs of the same trial produce bit-identical
//     registries;
//   * the runner gives each trial its own shard registry and merges the
//     shards in **submission order** (merge is a fixed-order fold of doubles,
//     so the result is bit-identical at any `WRSN_THREADS`);
//   * wall-clock timer metrics (`ScopedTimer` spans) are flagged
//     `timing = true` and live in a separate section of every export, so the
//     deterministic section can be compared byte-for-byte across runs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

#ifndef WRSN_OBS
#define WRSN_OBS 1
#endif

namespace wrsn::obs {

/// Fixed (compile-time) metric ids: hot paths index an array, no hashing.
enum class Metric : std::uint16_t {
  // Event kernel (src/sim/simulator.cpp).
  kSimEventsScheduled,
  kSimEventsFired,
  kSimEventsCancelled,
  kSimHeapCompactions,
  kSimHeapPeak,  ///< gauge-max: deepest heap observed
  // Incremental world updates / routing (src/sim/world.cpp).
  kNetRoutingRepairs,
  kNetRoutingRebuilds,
  kNetDrainReschedules,
  kNetRepairAffectedFraction,  ///< histogram: recomputed-node fraction per death
  kWorldDeaths,
  kWorldRequests,
  kWorldEscalations,
  // CSA planner (src/core/planners.cpp, src/core/orchestrator.cpp).
  kCsaReplans,
  kCsaInsertionsTried,
  kCsaCacheHits,
  kCsaCacheMisses,
  kCsaTravelMemoHits,
  kCsaTravelMemoMisses,
  kCsaPlanNs,  ///< timing histogram: one CSA plan() call
  // Mobile charger energy ledger (src/mc/charger.cpp, orchestrator/agent).
  kMcSessions,
  kMcSessionsSpoofed,
  kMcTravelJ,
  kMcRadiatedGenuineJ,
  kMcRadiatedSpoofedJ,
  kMcSessionEnergyJ,  ///< histogram: energy delivered per charging session
  // Detectors (src/detect/detectors.cpp).
  kDetectSuiteRuns,
  kDetectSessionsAudited,
  kDetectDetections,
  // Runner (src/runner/runner.hpp).
  kRunnerTrials,
  kRunnerTrialNs,  ///< timing histogram: wall time per trial
  // Fault injection (src/fault/injector.cpp).
  kFaultMcBreakdowns,
  kFaultMcRepairs,
  kFaultNodeBurstKills,
  kFaultPhaseNoiseWindows,
  kFaultEscalationsDropped,
  kFaultEscalationsDelayed,
  kFaultDriftNodes,
  kFaultAbsorbed,  ///< faults with no hook or no live victim
  kFaultMcHandoffs,  ///< permanent losses delivered to a fleet handoff hook
  // Fleet planner (src/core/fleet_planner.cpp, src/analysis/scenario.cpp).
  kFleetPlans,
  kFleetAuctionMoves,      ///< stops awarded off their spatial-seed charger
  kFleetUnscheduledKeys,   ///< keys no charger could schedule
  kFleetHandoffs,          ///< permanent-loss territory redistributions
  kFleetHandoffNodes,      ///< nodes adopted by survivors during handoffs
  // Mission service (src/svc/service.cpp).  These live in the *timing*
  // export section even though most are counters: whether a duplicate
  // request lands as a cache hit or a coalesced join depends on arrival
  // timing, so the tallies are load-dependent and must not pollute the
  // deterministic section's byte-for-byte comparability.
  kSvcRequests,
  kSvcExecutions,          ///< cache/coalesce misses that ran a mission
  kSvcCacheHits,
  kSvcCacheMisses,
  kSvcCacheEvictions,
  kSvcCoalesced,           ///< requests that joined an in-flight execution
  kSvcShed,                ///< requests rejected by admission control
  kSvcQueuePeak,           ///< gauge-max: deepest in-flight backlog observed
  kSvcRequestNs,           ///< timing histogram: one submit() round trip
  kCount,
};

inline constexpr std::size_t kMetricCount = std::size_t(Metric::kCount);

enum class MetricKind : std::uint8_t { kCounter, kGaugeMax, kHistogram };

/// Static description of a fixed metric (name, kind, bucket layout).
struct MetricDef {
  std::string_view name;
  MetricKind kind = MetricKind::kCounter;
  /// Wall-clock timer metric: excluded from the deterministic export section.
  bool timing = false;
  /// Histogram layout (ignored for scalars): `buckets` finite buckets
  /// spanning (lo, hi], log-spaced when `log_spaced`, else linear.
  double lo = 0.0;
  double hi = 0.0;
  std::uint32_t buckets = 0;
  bool log_spaced = false;
};

namespace detail {

constexpr MetricDef counter(std::string_view name) {
  return {name, MetricKind::kCounter};
}
constexpr MetricDef gauge(std::string_view name) {
  return {name, MetricKind::kGaugeMax};
}
constexpr MetricDef hist(std::string_view name, double lo, double hi,
                         std::uint32_t buckets, bool log_spaced) {
  return {name, MetricKind::kHistogram, /*timing=*/false,
          lo,   hi,                     buckets,
          log_spaced};
}
/// Shared timer layout: 100 ns .. 10 s, 32 log-spaced buckets.
constexpr MetricDef timing_ns(std::string_view name) {
  return {name, MetricKind::kHistogram, /*timing=*/true, 1e2, 1e10, 32, true};
}
/// Load-dependent scalars (service tallies): counter/gauge semantics, but
/// exported in the timing section because they are not a pure function of
/// the simulated work.
constexpr MetricDef load_counter(std::string_view name) {
  return {name, MetricKind::kCounter, /*timing=*/true};
}
constexpr MetricDef load_gauge(std::string_view name) {
  return {name, MetricKind::kGaugeMax, /*timing=*/true};
}

/// The def table, POSITIONAL in `Metric` enum order.  Constexpr so the
/// kind checks in the inline write paths fold away at every call site
/// (the metric is always an enum literal there).
inline constexpr std::array<MetricDef, kMetricCount> kDefTable{{
    counter("sim.events_scheduled"),
    counter("sim.events_fired"),
    counter("sim.events_cancelled"),
    counter("sim.heap_compactions"),
    gauge("sim.heap_peak"),
    counter("net.routing_repairs"),
    counter("net.routing_rebuilds"),
    counter("net.drain_reschedules"),
    hist("net.repair_affected_fraction", 0.0, 1.0, 20, false),
    counter("world.deaths"),
    counter("world.requests"),
    counter("world.escalations"),
    counter("csa.replans"),
    counter("csa.insertions_tried"),
    counter("csa.cache_hits"),
    counter("csa.cache_misses"),
    counter("csa.travel_memo_hits"),
    counter("csa.travel_memo_misses"),
    timing_ns("csa.plan_ns"),
    counter("mc.sessions"),
    counter("mc.sessions_spoofed"),
    counter("mc.travel_j"),
    counter("mc.radiated_genuine_j"),
    counter("mc.radiated_spoofed_j"),
    hist("mc.session_energy_j", 1.0, 1e6, 24, true),
    counter("detect.suite_runs"),
    counter("detect.sessions_audited"),
    counter("detect.detections"),
    counter("runner.trials"),
    timing_ns("runner.trial_ns"),
    counter("fault.mc_breakdowns"),
    counter("fault.mc_repairs"),
    counter("fault.node_burst_kills"),
    counter("fault.phase_noise_windows"),
    counter("fault.escalations_dropped"),
    counter("fault.escalations_delayed"),
    counter("fault.drift_nodes"),
    counter("fault.absorbed"),
    counter("fault.mc_handoffs"),
    counter("fleet.plans"),
    counter("fleet.auction_moves"),
    counter("fleet.unscheduled_keys"),
    counter("fleet.handoffs"),
    counter("fleet.handoff_nodes"),
    load_counter("svc.requests"),
    load_counter("svc.executions"),
    load_counter("svc.cache_hits"),
    load_counter("svc.cache_misses"),
    load_counter("svc.cache_evictions"),
    load_counter("svc.coalesced"),
    load_counter("svc.shed"),
    load_gauge("svc.queue_peak"),
    timing_ns("svc.request_ns"),
}};

// Guard the positional layout against enum drift.
static_assert(kDefTable[std::size_t(Metric::kSimEventsScheduled)].name ==
              "sim.events_scheduled");
static_assert(kDefTable[std::size_t(Metric::kSimHeapPeak)].kind ==
              MetricKind::kGaugeMax);
static_assert(kDefTable[std::size_t(Metric::kCsaPlanNs)].timing);
static_assert(kDefTable[std::size_t(Metric::kMcSessionEnergyJ)].name ==
              "mc.session_energy_j");
static_assert(kDefTable[std::size_t(Metric::kRunnerTrialNs)].name ==
              "runner.trial_ns");
static_assert(kDefTable[std::size_t(Metric::kFaultMcBreakdowns)].name ==
              "fault.mc_breakdowns");
static_assert(kDefTable[std::size_t(Metric::kFaultAbsorbed)].name ==
              "fault.absorbed");
static_assert(kDefTable[std::size_t(Metric::kFleetPlans)].name ==
              "fleet.plans");
static_assert(kDefTable[std::size_t(Metric::kFleetHandoffNodes)].name ==
              "fleet.handoff_nodes");
static_assert(kDefTable[std::size_t(Metric::kSvcRequests)].name ==
              "svc.requests");
static_assert(kDefTable[std::size_t(Metric::kSvcRequests)].timing);
static_assert(kDefTable[std::size_t(Metric::kSvcQueuePeak)].kind ==
              MetricKind::kGaugeMax);
static_assert(kDefTable[std::size_t(Metric::kSvcRequestNs)].name ==
              "svc.request_ns");

}  // namespace detail

/// The def table, indexed by `Metric`.
inline const MetricDef& metric_def(Metric m) {
  WRSN_ASSERT(std::size_t(m) < kMetricCount);
  return detail::kDefTable[std::size_t(m)];
}

/// Fixed-bucket histogram.  `counts()` has `bounds().size() + 1` entries:
/// one per finite bucket plus a trailing overflow bucket.  A value lands in
/// the first finite bucket whose upper bound is >= it (values below `lo`
/// fold into bucket 0; values above `hi` land in the overflow bucket).
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(const MetricDef& def);

  void observe(double value);
  void merge(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Min/max of observed values; 0 when empty.
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::vector<double> bounds_;  ///< finite-bucket upper edges, ascending
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One registry row, used by the exporters; `hist` is null for scalars.
struct MetricRow {
  std::string_view name;
  MetricKind kind = MetricKind::kCounter;
  bool timing = false;
  double value = 0.0;  ///< counter total or gauge max; 0 for histograms
  const Histogram* hist = nullptr;
};

/// Metric store for one unit of work.  Fixed metrics are enum-indexed;
/// dynamic metrics (e.g. per-detector timers) are found by name and iterate
/// in first-touch order, which is deterministic because instrumented code
/// touches them in program order.
class MetricRegistry {
 public:
  MetricRegistry();
  MetricRegistry(MetricRegistry&&) = default;
  MetricRegistry& operator=(MetricRegistry&&) = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The scalar write paths are inline and the kind asserts constant-fold
  // (the def table is constexpr and `m` is an enum literal at call sites),
  // so an instrumented hot path pays one TLS load, a branch, and the write.
  void add(Metric m, double amount = 1.0) noexcept {
    WRSN_ASSERT(metric_def(m).kind == MetricKind::kCounter);
    scalars_[std::size_t(m)] += amount;
  }
  void gauge_max(Metric m, double value) noexcept {
    WRSN_ASSERT(metric_def(m).kind == MetricKind::kGaugeMax);
    double& slot = scalars_[std::size_t(m)];
    if (value > slot) slot = value;
  }
  void observe(Metric m, double value);

  /// Dynamic named counter / timing histogram (layout of `kCsaPlanNs`).
  void add_named(std::string_view name, double amount = 1.0);
  void observe_named_ns(std::string_view name, double nanoseconds);

  /// Folds `other` into this registry.  Counters add, gauges take the max,
  /// histograms add bucket-wise.  Called in submission order by the runner.
  void merge(const MetricRegistry& other);

  double value(Metric m) const { return scalars_[std::size_t(m)]; }
  const Histogram& histogram(Metric m) const;

  /// All rows: fixed metrics in enum order, then named in first-touch order.
  std::vector<MetricRow> rows() const;

 private:
  struct NamedMetric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    bool timing = false;
    double value = 0.0;
    Histogram hist;
  };

  NamedMetric& named_slot(std::string_view name, MetricKind kind, bool timing);

  std::array<double, kMetricCount> scalars_{};
  /// Histogram storage indexed via hist_index_ (kuint32max for scalars).
  std::array<std::uint32_t, kMetricCount> hist_index_;
  std::vector<Histogram> hists_;
  std::vector<NamedMetric> named_;
};

namespace detail {
/// The thread-local current registry; null = instrumentation disabled.
extern thread_local MetricRegistry* g_current;
}  // namespace detail

inline MetricRegistry* current() noexcept { return detail::g_current; }

/// Installs `registry` (may be null: explicitly *no* registry, which the
/// runner uses so trial behavior never depends on the caller's thread-local
/// state) as the current one for this thread, restoring the previous
/// registry on destruction.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(MetricRegistry* registry) noexcept
      : prev_(detail::g_current) {
    detail::g_current = registry;
  }
  ~ScopedRegistry() { detail::g_current = prev_; }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  MetricRegistry* prev_;
};

inline void count(Metric m, double amount = 1.0) noexcept {
  if (MetricRegistry* r = detail::g_current) r->add(m, amount);
}
inline void gauge_max(Metric m, double value) noexcept {
  if (MetricRegistry* r = detail::g_current) r->gauge_max(m, value);
}
inline void observe(Metric m, double value) noexcept {
  if (MetricRegistry* r = detail::g_current) r->observe(m, value);
}

/// RAII span: records elapsed wall nanoseconds into a timing histogram.
/// Arms only if a registry is installed at construction.
namespace detail {

// Span clock.  On x86-64 spans read the invariant TSC directly (~10 ns)
// instead of steady_clock (~45 ns per read where clock_gettime misses the
// vDSO fast path, e.g. inside VMs) and convert ticks to nanoseconds with a
// once-per-process calibration against steady_clock.  Timing histograms are
// segregated from the deterministic export section, so calibration jitter
// never affects reproducibility.
#if defined(__x86_64__) || defined(_M_X64)
inline std::uint64_t span_ticks() noexcept { return __rdtsc(); }
/// Nanoseconds per TSC tick; spins ~200 us on the first call to calibrate.
double span_ns_per_tick();
inline double span_elapsed_ns(std::uint64_t t0, std::uint64_t t1) {
  return double(t1 - t0) * span_ns_per_tick();
}
#else
inline std::uint64_t span_ticks() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
inline double span_elapsed_ns(std::uint64_t t0, std::uint64_t t1) {
  using Period = std::chrono::steady_clock::period;
  return double(t1 - t0) * (1e9 * double(Period::num) / double(Period::den));
}
#endif

}  // namespace detail

class ScopedTimer {
 public:
  explicit ScopedTimer(Metric m) noexcept : metric_(m), registry_(current()) {
    if (registry_ != nullptr) start_ = detail::span_ticks();
  }
  ~ScopedTimer() {
    if (registry_ != nullptr) {
      registry_->observe(
          metric_, detail::span_elapsed_ns(start_, detail::span_ticks()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metric metric_;
  MetricRegistry* registry_;
  std::uint64_t start_ = 0;
};

/// RAII span for a dynamic named timing histogram (e.g. per-detector).
/// Owns its name so callers may pass a temporary string.
class NamedScopedTimer {
 public:
  explicit NamedScopedTimer(std::string name)
      : name_(std::move(name)), registry_(current()) {
    if (registry_ != nullptr) start_ = detail::span_ticks();
  }
  ~NamedScopedTimer() {
    if (registry_ != nullptr) {
      registry_->observe_named_ns(
          name_, detail::span_elapsed_ns(start_, detail::span_ticks()));
    }
  }
  NamedScopedTimer(const NamedScopedTimer&) = delete;
  NamedScopedTimer& operator=(const NamedScopedTimer&) = delete;

 private:
  std::string name_;
  MetricRegistry* registry_;
  std::uint64_t start_ = 0;
};

}  // namespace wrsn::obs

// Instrumentation macros.  `metric` is a bare `Metric` enumerator name.
#if WRSN_OBS
#define WRSN_OBS_CONCAT_IMPL(a, b) a##b
#define WRSN_OBS_CONCAT(a, b) WRSN_OBS_CONCAT_IMPL(a, b)
#define WRSN_OBS_COUNT(metric) ::wrsn::obs::count(::wrsn::obs::Metric::metric)
#define WRSN_OBS_ADD(metric, amount) \
  ::wrsn::obs::count(::wrsn::obs::Metric::metric, (amount))
#define WRSN_OBS_GAUGE_MAX(metric, value) \
  ::wrsn::obs::gauge_max(::wrsn::obs::Metric::metric, (value))
#define WRSN_OBS_OBSERVE(metric, value) \
  ::wrsn::obs::observe(::wrsn::obs::Metric::metric, (value))
#define WRSN_OBS_SPAN(metric)                                   \
  ::wrsn::obs::ScopedTimer WRSN_OBS_CONCAT(wrsn_obs_span_,      \
                                           __LINE__) {          \
    ::wrsn::obs::Metric::metric                                 \
  }
#define WRSN_OBS_SPAN_NAMED(name) \
  ::wrsn::obs::NamedScopedTimer WRSN_OBS_CONCAT(wrsn_obs_span_, __LINE__) { \
    (name)                                                                  \
  }
#else
#define WRSN_OBS_COUNT(metric) ((void)0)
#define WRSN_OBS_ADD(metric, amount) ((void)0)
#define WRSN_OBS_GAUGE_MAX(metric, value) ((void)0)
#define WRSN_OBS_OBSERVE(metric, value) ((void)0)
#define WRSN_OBS_SPAN(metric) ((void)0)
#define WRSN_OBS_SPAN_NAMED(name) ((void)0)
#endif
