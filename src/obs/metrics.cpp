#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace wrsn::obs {

namespace detail {

thread_local MetricRegistry* g_current = nullptr;

#if defined(__x86_64__) || defined(_M_X64)
double span_ns_per_tick() {
  // One calibration per process: spin ~200 us against steady_clock, long
  // enough to swamp the clock-read latency at both ends.  Assumes an
  // invariant (constant-rate) TSC, standard on every x86-64 part this
  // project targets.
  static const double ns_per_tick = [] {
    const auto w0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = __rdtsc();
    auto w1 = w0;
    do {
      w1 = std::chrono::steady_clock::now();
    } while (w1 - w0 < std::chrono::microseconds(200));
    const std::uint64_t c1 = __rdtsc();
    const double ns = std::chrono::duration<double, std::nano>(w1 - w0).count();
    return c1 > c0 ? ns / double(c1 - c0) : 1.0;
  }();
  return ns_per_tick;
}
#endif

}  // namespace detail

namespace {

constexpr std::uint32_t kNoHistogram = std::numeric_limits<std::uint32_t>::max();

}  // namespace

Histogram::Histogram(const MetricDef& def) {
  WRSN_REQUIRE(def.buckets > 0, "histogram needs at least one bucket");
  WRSN_REQUIRE(def.hi > def.lo, "histogram needs hi > lo");
  bounds_.reserve(def.buckets);
  for (std::uint32_t i = 0; i < def.buckets; ++i) {
    const double frac = double(i + 1) / double(def.buckets);
    bounds_.push_back(def.log_spaced
                          ? def.lo * std::pow(def.hi / def.lo, frac)
                          : def.lo + (def.hi - def.lo) * frac);
  }
  bounds_.back() = def.hi;  // exact upper edge, no pow round-off
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[std::size_t(it - bounds_.begin())]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  WRSN_ASSERT(bounds_.size() == other.bounds_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

MetricRegistry::MetricRegistry() {
  hist_index_.fill(kNoHistogram);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const MetricDef& d = detail::kDefTable[i];
    if (d.kind == MetricKind::kHistogram) {
      hist_index_[i] = std::uint32_t(hists_.size());
      hists_.emplace_back(d);
    }
  }
}

void MetricRegistry::observe(Metric m, double value) {
  const std::uint32_t index = hist_index_[std::size_t(m)];
  WRSN_ASSERT(index != kNoHistogram);
  hists_[index].observe(value);
}

const Histogram& MetricRegistry::histogram(Metric m) const {
  const std::uint32_t index = hist_index_[std::size_t(m)];
  WRSN_REQUIRE(index != kNoHistogram, "metric is not a histogram");
  return hists_[index];
}

MetricRegistry::NamedMetric& MetricRegistry::named_slot(std::string_view name,
                                                        MetricKind kind,
                                                        bool timing) {
  for (NamedMetric& named : named_) {
    if (named.name == name) {
      WRSN_ASSERT(named.kind == kind);
      return named;
    }
  }
  NamedMetric& named = named_.emplace_back();
  named.name = std::string(name);
  named.kind = kind;
  named.timing = timing;
  if (kind == MetricKind::kHistogram) {
    MetricDef layout = detail::timing_ns(name);
    layout.timing = timing;
    named.hist = Histogram(layout);
  }
  return named;
}

void MetricRegistry::add_named(std::string_view name, double amount) {
  named_slot(name, MetricKind::kCounter, /*timing=*/false).value += amount;
}

void MetricRegistry::observe_named_ns(std::string_view name,
                                      double nanoseconds) {
  named_slot(name, MetricKind::kHistogram, /*timing=*/true)
      .hist.observe(nanoseconds);
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const MetricDef& d = detail::kDefTable[i];
    switch (d.kind) {
      case MetricKind::kCounter:
        scalars_[i] += other.scalars_[i];
        break;
      case MetricKind::kGaugeMax:
        scalars_[i] = std::max(scalars_[i], other.scalars_[i]);
        break;
      case MetricKind::kHistogram:
        hists_[hist_index_[i]].merge(other.hists_[other.hist_index_[i]]);
        break;
    }
  }
  for (const NamedMetric& theirs : other.named_) {
    NamedMetric& ours = named_slot(theirs.name, theirs.kind, theirs.timing);
    if (theirs.kind == MetricKind::kHistogram) {
      ours.hist.merge(theirs.hist);
    } else {
      ours.value += theirs.value;
    }
  }
}

std::vector<MetricRow> MetricRegistry::rows() const {
  std::vector<MetricRow> out;
  out.reserve(kMetricCount + named_.size());
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const MetricDef& d = detail::kDefTable[i];
    MetricRow row;
    row.name = d.name;
    row.kind = d.kind;
    row.timing = d.timing;
    if (d.kind == MetricKind::kHistogram) {
      row.hist = &hists_[hist_index_[i]];
    } else {
      row.value = scalars_[i];
    }
    out.push_back(row);
  }
  for (const NamedMetric& named : named_) {
    MetricRow row;
    row.name = named.name;
    row.kind = named.kind;
    row.timing = named.timing;
    if (named.kind == MetricKind::kHistogram) {
      row.hist = &named.hist;
    } else {
      row.value = named.value;
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace wrsn::obs
