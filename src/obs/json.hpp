// JSON export for MetricRegistry (schema "wrsn-metrics-v1").
//
// Layout:
//   {
//     "schema": "wrsn-metrics-v1",
//     "deterministic": { "<name>": <number> | <histogram object>, ... },
//     "timing":        { ... }
//   }
// Scalars (counters, gauges) are bare numbers; histograms are objects with
// "kind", "count", "sum", "min", "max", "bounds", "counts".  The
// "deterministic" section is a pure function of the simulated work and is
// bit-identical across runs and thread counts; "timing" holds wall-clock
// spans and varies run to run.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace wrsn::obs {

struct JsonOptions {
  /// Emit the "timing" section (drop it for byte-comparable output).
  bool include_timing = true;
};

std::string to_json(const MetricRegistry& registry,
                    const JsonOptions& options = {});

/// Deterministic number formatting: integers print without a decimal point,
/// everything else round-trips via %.17g.
std::string json_number(double value);

}  // namespace wrsn::obs
