#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace wrsn::obs {

namespace {

void append_histogram(std::string& out, const Histogram& hist,
                      const std::string& indent) {
  out += "{\n";
  out += indent + "  \"kind\": \"histogram\",\n";
  out += indent + "  \"count\": " + json_number(double(hist.count())) + ",\n";
  out += indent + "  \"sum\": " + json_number(hist.sum()) + ",\n";
  out += indent + "  \"min\": " + json_number(hist.min()) + ",\n";
  out += indent + "  \"max\": " + json_number(hist.max()) + ",\n";
  out += indent + "  \"bounds\": [";
  for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
    if (i > 0) out += ", ";
    out += json_number(hist.bounds()[i]);
  }
  out += "],\n";
  out += indent + "  \"counts\": [";
  for (std::size_t i = 0; i < hist.counts().size(); ++i) {
    if (i > 0) out += ", ";
    out += json_number(double(hist.counts()[i]));
  }
  out += "]\n";
  out += indent + "}";
}

void append_section(std::string& out, const std::vector<MetricRow>& rows,
                    bool timing_section) {
  bool first = true;
  for (const MetricRow& row : rows) {
    if (row.timing != timing_section) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    \"" + std::string(row.name) + "\": ";
    if (row.hist != nullptr) {
      append_histogram(out, *row.hist, "    ");
    } else {
      out += json_number(row.value);
    }
  }
  if (!first) out += "\n";
}

}  // namespace

std::string json_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string to_json(const MetricRegistry& registry,
                    const JsonOptions& options) {
  const std::vector<MetricRow> rows = registry.rows();
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"wrsn-metrics-v1\",\n";
  out += "  \"deterministic\": {\n";
  append_section(out, rows, /*timing_section=*/false);
  out += "  }";
  if (options.include_timing) {
    out += ",\n  \"timing\": {\n";
    append_section(out, rows, /*timing_section=*/true);
    out += "  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace wrsn::obs
