// Empirical end-to-end charging model of a benign mobile charger.
//
// Follows the empirical far-field law used throughout the WRSN mobile
// charging literature (He et al.):  P_rf(d) = alpha / (d + beta)^2, where
// alpha folds the source power and antenna gains, chained with the nonlinear
// rectifier to give the harvested DC power.  Calibrated so a charger docked
// at `dock_distance` delivers on the order of watts, matching the time
// scales the literature simulates with.
#pragma once

#include "common/units.hpp"
#include "wpt/rectifier.hpp"
#include "wpt/wave.hpp"

namespace wrsn::wpt {

/// Parameters of the benign charging chain.
struct ChargingModelParams {
  /// Total radiated RF power of the charger [W].
  Watts source_power = 3.0;

  /// Dimensionless antenna-gain/polarization product of the empirical fit;
  /// alpha = source_power * gain_product.
  double gain_product = 0.18;

  /// Near-field regularizer of the empirical fit [m] (literature constant).
  Meters beta = 0.2316;

  /// Received power treated as zero beyond this range [m].
  Meters max_range = 8.0;

  /// Distance at which the charger parks to serve a node [m].
  Meters dock_distance = 0.3;

  /// Carrier wavelength [m].
  Meters wavelength = constants::kDefaultWavelength;

  RectifierParams rectifier;

  /// Throws ConfigError on non-physical values.
  void validate() const;
};

/// Benign single-antenna charging chain: decay law + rectifier.
class ChargingModel {
 public:
  ChargingModel() : ChargingModel(ChargingModelParams{}) {}
  explicit ChargingModel(const ChargingModelParams& params);

  /// RF power arriving at a harvester `d` meters from the charger.
  Watts rf_at_distance(Meters d) const;

  /// Harvested DC power at distance `d` (RF chained through the rectifier).
  Watts dc_at_distance(Meters d) const;

  /// Batched charging chain: out_dc[i] == dc_at_distance(d[i]) bit for bit
  /// (same-size spans; in-place d == out_dc is allowed).  One pass applies
  /// the decay law into out_dc, then the rectifier's batched transfer curve
  /// rewrites it in place; no allocation.
  void dc_at_distances(std::span<const Meters> d,
                       std::span<Watts> out_dc) const;

  /// Harvested DC power at the docking distance — the nominal service rate
  /// a node expects during a charging session.
  Watts docked_dc_power() const;

  /// Builds the single coherent wave source equivalent of this charger at
  /// `position` with carrier phase `phase`.
  WaveSource as_wave_source(geom::Vec2 position, Radians phase = 0.0) const;

  const ChargingModelParams& params() const { return params_; }
  const Rectifier& rectifier() const { return rectifier_; }

  /// alpha of the decay law: source_power * gain_product [W * m^2].
  Watts alpha() const { return params_.source_power * params_.gain_product; }

 private:
  ChargingModelParams params_;
  Rectifier rectifier_;
};

}  // namespace wrsn::wpt
