#include "wpt/spoofing.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "wpt/wave.hpp"

namespace wrsn::wpt {

void SpoofingParams::validate() const {
  if (antenna_separation <= 0.0) {
    throw ConfigError("antenna_separation must be > 0");
  }
  if (phase_jitter_sigma < 0.0) {
    throw ConfigError("phase_jitter_sigma must be >= 0");
  }
  if (amplitude_imbalance < 0.0 || amplitude_imbalance >= 1.0) {
    throw ConfigError("amplitude_imbalance must be in [0, 1)");
  }
}

SpoofingEmitter::SpoofingEmitter(const ChargingModel& model,
                                 const SpoofingParams& params)
    : model_(model), params_(params) {
  params_.validate();
}

SpoofOutcome SpoofingEmitter::configure_with_detune(geom::Vec2 charger_pos,
                                                    geom::Vec2 target_pos,
                                                    Radians detune,
                                                    Rng* rng) const {
  WRSN_REQUIRE(charger_pos != target_pos,
               "charger cannot be co-located with the rectenna");

  // Place the antenna pair on the baseline perpendicular to the line of
  // sight, symmetric about the charger position.  Both antennas are then
  // equidistant from the target, so their amplitudes match and a pi carrier
  // offset cancels the field at the rectenna exactly (up to hardware error).
  const geom::Vec2 los = (target_pos - charger_pos).normalized();
  const geom::Vec2 perp{-los.y, los.x};
  const geom::Vec2 half = perp * (params_.antenna_separation / 2.0);

  // Split the benign radiated power across the two chains so the total
  // radiated (and hence depot-side energy accounting) is unchanged.
  const Watts alpha_half = model_.alpha() / 2.0;

  double imbalance = 0.0;
  Radians jitter = 0.0;
  if (rng != nullptr) {
    imbalance = rng->normal(0.0, params_.amplitude_imbalance);
    jitter = rng->normal(0.0, params_.phase_jitter_sigma);
  }

  SpoofOutcome out;
  for (auto& src : out.sources) {
    src.beta = model_.params().beta;
    src.wavelength = model_.params().wavelength;
    src.max_range = model_.params().max_range;
  }
  out.sources[0].position = charger_pos + half;
  out.sources[0].alpha = alpha_half * (1.0 + imbalance);
  out.sources[0].phase_offset = 0.0;

  out.sources[1].position = charger_pos - half;
  out.sources[1].alpha = alpha_half * (1.0 - imbalance);

  // Choose the second carrier phase so the two waves arrive at the rectenna
  // exactly pi apart: phi2 - k*d2 = phi1 - k*d1 + pi.
  const Meters d1 = geom::distance(out.sources[0].position, target_pos);
  const Meters d2 = geom::distance(out.sources[1].position, target_pos);
  const Meters lambda = model_.params().wavelength;
  out.sources[1].phase_offset = propagation_phase(d2, lambda) -
                                propagation_phase(d1, lambda) +
                                constants::kPi + detune + jitter;

  out.rf_at_target = superposed_rf_power(out.sources, target_pos);
  out.dc_at_target = model_.rectifier().dc_output(out.rf_at_target);

  const Meters d = geom::distance(charger_pos, target_pos);
  out.rf_benign_equiv = model_.rf_at_distance(d);
  out.dc_benign_equiv = model_.rectifier().dc_output(out.rf_benign_equiv);

  constexpr double kSuppressionCapDb = 150.0;
  if (out.rf_at_target <= 0.0) {
    out.suppression_db = kSuppressionCapDb;
  } else {
    out.suppression_db = std::min(
        kSuppressionCapDb,
        10.0 * std::log10(out.rf_benign_equiv / out.rf_at_target));
  }
  return out;
}

SpoofOutcome SpoofingEmitter::configure(geom::Vec2 charger_pos,
                                        geom::Vec2 target_pos,
                                        Rng* rng) const {
  return configure_with_detune(charger_pos, target_pos, 0.0, rng);
}

SpoofOutcome SpoofingEmitter::configure_partial(geom::Vec2 charger_pos,
                                                geom::Vec2 target_pos,
                                                Watts desired_dc, Rng* rng,
                                                const geom::Vec2* keep_lit) const {
  WRSN_REQUIRE(desired_dc >= 0.0, "negative desired DC");
  if (desired_dc == 0.0) {
    return configure_with_detune(charger_pos, target_pos, 0.0, rng);
  }
  // Harvested DC is monotone non-decreasing in the detune angle on
  // [0, pi] (anti-phase -> in-phase); bisect on the jitter-free outcome,
  // then apply hardware noise to the chosen detune.
  Radians lo = 0.0;
  Radians hi = constants::kPi;
  const SpoofOutcome at_max =
      configure_with_detune(charger_pos, target_pos, hi, nullptr);
  if (desired_dc >= at_max.dc_at_target) {
    return configure_with_detune(charger_pos, target_pos, hi, rng);
  }
  for (int iter = 0; iter < 60; ++iter) {
    const Radians mid = 0.5 * (lo + hi);
    const SpoofOutcome out =
        configure_with_detune(charger_pos, target_pos, mid, nullptr);
    if (out.dc_at_target < desired_dc) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Both detune signs deliver the same DC at the rectenna but mirror the
  // spatial pattern; keep the requested probe point lit if asked to.
  Radians detune = hi;
  if (keep_lit != nullptr) {
    const SpoofOutcome plus =
        configure_with_detune(charger_pos, target_pos, hi, nullptr);
    const SpoofOutcome minus =
        configure_with_detune(charger_pos, target_pos, -hi, nullptr);
    if (superposed_rf_power(minus.sources, *keep_lit) >
        superposed_rf_power(plus.sources, *keep_lit)) {
      detune = -hi;
    }
  }
  return configure_with_detune(charger_pos, target_pos, detune, rng);
}

Watts SpoofingEmitter::rf_at_probe(const SpoofOutcome& outcome,
                                   geom::Vec2 probe) const {
  return superposed_rf_power(outcome.sources, probe);
}

void SpoofingEmitter::rf_at_probes(const SpoofOutcome& outcome,
                                   std::span<const Meters> xs,
                                   std::span<const Meters> ys,
                                   std::span<Watts> out_rf,
                                   std::span<double> scratch_im) const {
  superposed_rf_power_batch(outcome.sources, xs, ys, out_rf, scratch_im);
}

}  // namespace wrsn::wpt
