// Coherent electromagnetic wave propagation and superposition.
//
// This is the physical foundation of the Charging Spoofing Attack: RF power
// from multiple coherent sources does NOT add linearly.  Each source
// contributes a complex phasor whose magnitude follows the far-field decay
// law and whose phase advances with propagated distance; the received RF
// power is the squared magnitude of the phasor sum.  Two equal-amplitude
// waves arriving pi out of phase cancel completely.
#pragma once

#include <complex>
#include <span>

#include "common/units.hpp"
#include "geom/vec2.hpp"

namespace wrsn::wpt {

/// A coherent point source of RF power.
///
/// `power_model(d)` semantics are delegated to the caller: the source carries
/// the received power its wave alone would deliver at distance d via the
/// `alpha / (d + beta)^2` empirical law (see ChargingModel); `phase_offset`
/// is the phase of the emitted carrier at the antenna.
struct WaveSource {
  geom::Vec2 position;        ///< antenna location [m]
  Watts alpha = 0.0;          ///< numerator of the decay law [W * m^2]
  Meters beta = 0.2316;       ///< near-field regularizer [m]
  Radians phase_offset = 0.0; ///< carrier phase at the antenna
  Meters wavelength = constants::kDefaultWavelength;
  Meters max_range = 10.0;    ///< contribution treated as zero beyond this

  /// Received power of this source alone at distance `d` (non-coherent view).
  Watts power_at_distance(Meters d) const;

  /// Complex field phasor of this source at `point`; |phasor|^2 is the power
  /// this source alone would deliver there.
  std::complex<double> phasor_at(geom::Vec2 point) const;
};

/// Received RF power at `point` under coherent superposition of all sources.
///
/// This is the nonlinear-superposition primitive: for a single source it
/// reduces to the empirical decay law; for multiple coherent sources it
/// includes the interference cross-terms (constructive up to
/// (sum of amplitudes)^2, destructive down to zero).
Watts superposed_rf_power(std::span<const WaveSource> sources, geom::Vec2 point);

/// Received RF power if the sources were incoherent (plain sum of powers).
/// Provided to quantify the superposition effect against the naive model.
Watts incoherent_rf_power(std::span<const WaveSource> sources, geom::Vec2 point);

/// Batched superposition over flat receiver coordinate arrays:
/// out_rf[i] == superposed_rf_power(sources, {xs[i], ys[i]}) bit for bit.
///
/// Data-oriented evaluation for many receivers at once (field maps, per-node
/// exposure sweeps): the loop runs source-major with the per-source constants
/// (position, decay law, carrier) hoisted once, accumulating the field into
/// `out_rf` (real part) and `scratch_im` (imaginary part) with no per-point
/// WaveSource or std::complex temporaries, then squares the magnitude in one
/// final pass.  All spans must have the same length; `scratch_im` is caller
/// scratch so steady-state callers allocate nothing.
void superposed_rf_power_batch(std::span<const WaveSource> sources,
                               std::span<const Meters> xs,
                               std::span<const Meters> ys,
                               std::span<Watts> out_rf,
                               std::span<double> scratch_im);

/// Phase accumulated by a wave of wavelength `lambda` over distance `d`.
Radians propagation_phase(Meters d, Meters lambda);

}  // namespace wrsn::wpt
