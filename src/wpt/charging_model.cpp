#include "wpt/charging_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wrsn::wpt {

void ChargingModelParams::validate() const {
  if (source_power <= 0.0) throw ConfigError("source_power must be > 0");
  if (gain_product <= 0.0) throw ConfigError("gain_product must be > 0");
  if (beta <= 0.0) throw ConfigError("beta must be > 0");
  if (max_range <= 0.0) throw ConfigError("max_range must be > 0");
  if (dock_distance < 0.0) throw ConfigError("dock_distance must be >= 0");
  if (dock_distance > max_range) {
    throw ConfigError("dock_distance beyond max_range: charger would dock out of reach");
  }
  if (wavelength <= 0.0) throw ConfigError("wavelength must be > 0");
  rectifier.validate();
}

ChargingModel::ChargingModel(const ChargingModelParams& params)
    : params_(params), rectifier_(params.rectifier) {
  params_.validate();
}

Watts ChargingModel::rf_at_distance(Meters d) const {
  WRSN_REQUIRE(d >= 0.0, "negative distance");
  if (d > params_.max_range) return 0.0;
  const double denom = (d + params_.beta) * (d + params_.beta);
  // The empirical fit can exceed the radiated power at d -> 0; clamp to keep
  // the model physical at contact range.
  return std::min(params_.source_power, alpha() / denom);
}

Watts ChargingModel::dc_at_distance(Meters d) const {
  return rectifier_.dc_output(rf_at_distance(d));
}

void ChargingModel::dc_at_distances(std::span<const Meters> d,
                                    std::span<Watts> out_dc) const {
  const std::size_t n = d.size();
  WRSN_REQUIRE(out_dc.size() == n, "batch span size mismatch");
  Meters lo = 0.0;
  for (std::size_t i = 0; i < n; ++i) lo = std::min(lo, d[i]);
  WRSN_REQUIRE(lo >= 0.0, "negative distance");
  const Watts source_power = params_.source_power;
  const Meters beta = params_.beta;
  const Meters max_range = params_.max_range;
  const Watts a = alpha();
  for (std::size_t i = 0; i < n; ++i) {
    // rf_at_distance, expression for expression (branch-free).
    const double denom = (d[i] + beta) * (d[i] + beta);
    const Watts clamped = std::min(source_power, a / denom);
    out_dc[i] = d[i] > max_range ? 0.0 : clamped;
  }
  rectifier_.harvest_batch(out_dc, out_dc);
}

Watts ChargingModel::docked_dc_power() const {
  return dc_at_distance(params_.dock_distance);
}

WaveSource ChargingModel::as_wave_source(geom::Vec2 position,
                                         Radians phase) const {
  WaveSource src;
  src.position = position;
  src.alpha = alpha();
  src.beta = params_.beta;
  src.phase_offset = phase;
  src.wavelength = params_.wavelength;
  src.max_range = params_.max_range;
  return src;
}

}  // namespace wrsn::wpt
