// Nonlinear RF-to-DC rectifier model.
//
// Real energy harvesters (Powercast P1110 class) convert nothing below a
// sensitivity threshold and convert with a saturating efficiency above it.
// This nonlinearity is what makes the Charging Spoofing Attack *total*: even
// imperfect wave cancellation, which leaves a small residual RF power at the
// target, lands below the threshold and harvests exactly zero DC.
#pragma once

#include <span>

#include "common/units.hpp"

namespace wrsn::wpt {

/// Parameters of the saturating-efficiency rectifier curve.
struct RectifierParams {
  /// RF input below this harvests nothing [W].  Default 1 mW (~0 dBm),
  /// a conservative stand-in for commodity harvester sensitivity.
  Watts sensitivity = 1e-3;

  /// Peak RF-to-DC conversion efficiency, approached asymptotically.
  double max_efficiency = 0.65;

  /// Input-power scale of the efficiency knee [W]: efficiency reaches
  /// ~63 % of max at sensitivity + knee.
  Watts knee = 30e-3;

  /// Hard cap on harvested DC power (regulator limit) [W].
  Watts dc_cap = 3.0;

  /// Throws ConfigError if any parameter is out of its physical domain.
  void validate() const;
};

/// Stateless nonlinear rectifier.
class Rectifier {
 public:
  Rectifier() : Rectifier(RectifierParams{}) {}
  explicit Rectifier(const RectifierParams& params);

  /// Conversion efficiency at the given RF input power; zero below the
  /// sensitivity threshold, monotonically saturating above it.
  double efficiency(Watts rf_in) const;

  /// Harvested DC power for the given RF input power.
  Watts dc_output(Watts rf_in) const;

  /// Batched transfer curve: dc_out[i] == dc_output(rf_in[i]) bit for bit
  /// (same-size spans; in-place rf_in == dc_out is allowed).  Inputs are
  /// validated in one pass up front so the transfer loop stays branch-free
  /// with the curve constants hoisted; no allocation.
  void harvest_batch(std::span<const Watts> rf_in,
                     std::span<Watts> dc_out) const;

  const RectifierParams& params() const { return params_; }

 private:
  RectifierParams params_;
};

}  // namespace wrsn::wpt
