// The charging-spoofing emitter: the physical payload of the CSA attack.
//
// A compromised mobile charger carries two coherent antennas separated by a
// small baseline.  To spoof-charge a target it splits its radiated power
// across the two antennas and sets the second antenna's carrier phase so the
// two waves arrive at the target's rectenna exactly pi out of phase.  The RF
// field at the rectenna then collapses to the amplitude-mismatch residual,
// which the nonlinear rectifier (sensitivity threshold) turns into exactly
// zero harvested DC — while a probe a quarter-wavelength away still measures
// a strong field, so the charger looks, sounds, and radiates like a benign
// one.  Total radiated power equals the benign charger's, so energy
// accounting at the depot cannot tell the difference either.
#pragma once

#include <array>
#include <optional>
#include <span>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "geom/vec2.hpp"
#include "wpt/charging_model.hpp"

namespace wrsn::wpt {

/// Hardware parameters of the dual-antenna spoofing payload.
struct SpoofingParams {
  /// Antenna baseline (separation between the two antennas) [m].
  Meters antenna_separation = 0.15;

  /// Standard deviation of the per-session carrier phase error [rad];
  /// models oscillator jitter and calibration error (~0.3 degrees, within
  /// reach of commodity phase shifters).
  Radians phase_jitter_sigma = 0.005;

  /// Fractional amplitude imbalance between the two antenna chains
  /// (0 = perfectly matched).
  double amplitude_imbalance = 0.01;

  void validate() const;
};

/// Outcome of configuring the emitter against one target.
struct SpoofOutcome {
  Watts rf_at_target = 0.0;      ///< residual RF power at the rectenna
  Watts dc_at_target = 0.0;      ///< harvested DC power (the attack goal: 0)
  Watts rf_benign_equiv = 0.0;   ///< RF a benign charger would deliver there
  Watts dc_benign_equiv = 0.0;   ///< DC a benign charger would deliver there
  double suppression_db = 0.0;   ///< 10*log10(rf_benign / rf_spoofed)
  std::array<WaveSource, 2> sources{};  ///< the configured antenna pair
};

/// Dual-antenna phase-cancellation emitter.
class SpoofingEmitter {
 public:
  SpoofingEmitter(const ChargingModel& model, const SpoofingParams& params);

  /// Configures the antenna pair for a charger docked at `charger_pos`
  /// attacking a rectenna at `target_pos`.  If `rng` is provided, phase
  /// jitter and amplitude imbalance are drawn per call; otherwise the
  /// cancellation is ideal.
  SpoofOutcome configure(geom::Vec2 charger_pos, geom::Vec2 target_pos,
                         Rng* rng = nullptr) const;

  /// Partial cancellation: detunes the second carrier away from the exact
  /// anti-phase so the rectenna harvests approximately `desired_dc` watts —
  /// the attacker's counter-move against single-session energy audits
  /// (deliver just enough to pass the threshold, still starving the node).
  /// `desired_dc` is clamped to what full constructive alignment could
  /// deliver at this geometry.  Jitter applies on top when `rng` is given.
  ///
  /// Detuning relocates the interference null away from the rectenna; the
  /// two detune signs give the same harvested DC but mirrored spatial
  /// patterns.  When `keep_lit` is provided (e.g. the target's comm
  /// antenna), the sign leaving more field at that point is chosen, so the
  /// leak does not park the null on the victim's RSSI sensor.
  SpoofOutcome configure_partial(geom::Vec2 charger_pos, geom::Vec2 target_pos,
                                 Watts desired_dc, Rng* rng = nullptr,
                                 const geom::Vec2* keep_lit = nullptr) const;

  /// RF power observed at an arbitrary probe point for a configured pair.
  /// Used by detectors and by the testbed bench to show the field is only
  /// nulled at the rectenna, not in the neighbourhood.
  Watts rf_at_probe(const SpoofOutcome& outcome, geom::Vec2 probe) const;

  /// Batched probe sweep over flat coordinate arrays, bit-identical to
  /// rf_at_probe per point (see superposed_rf_power_batch for the span
  /// contract) — one pass for field maps and multi-witness RSSI checks.
  void rf_at_probes(const SpoofOutcome& outcome, std::span<const Meters> xs,
                    std::span<const Meters> ys, std::span<Watts> out_rf,
                    std::span<double> scratch_im) const;

  const SpoofingParams& params() const { return params_; }

 private:
  /// Shared implementation: `detune` shifts the second carrier away from
  /// the exact anti-phase (0 = full cancellation, pi = constructive).
  SpoofOutcome configure_with_detune(geom::Vec2 charger_pos,
                                     geom::Vec2 target_pos, Radians detune,
                                     Rng* rng) const;

  const ChargingModel& model_;
  SpoofingParams params_;
};

}  // namespace wrsn::wpt
