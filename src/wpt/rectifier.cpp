#include "wpt/rectifier.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace wrsn::wpt {

void RectifierParams::validate() const {
  if (sensitivity < 0.0) throw ConfigError("rectifier sensitivity < 0");
  if (max_efficiency <= 0.0 || max_efficiency > 1.0) {
    throw ConfigError("rectifier max_efficiency must be in (0, 1]");
  }
  if (knee <= 0.0) throw ConfigError("rectifier knee must be > 0");
  if (dc_cap <= 0.0) throw ConfigError("rectifier dc_cap must be > 0");
}

Rectifier::Rectifier(const RectifierParams& params) : params_(params) {
  params_.validate();
}

double Rectifier::efficiency(Watts rf_in) const {
  WRSN_REQUIRE(rf_in >= 0.0, "negative RF input");
  if (rf_in < params_.sensitivity) return 0.0;
  const double excess = rf_in - params_.sensitivity;
  return params_.max_efficiency * (1.0 - std::exp(-excess / params_.knee));
}

Watts Rectifier::dc_output(Watts rf_in) const {
  return std::min(params_.dc_cap, efficiency(rf_in) * rf_in);
}

void Rectifier::harvest_batch(std::span<const Watts> rf_in,
                              std::span<Watts> dc_out) const {
  const std::size_t n = rf_in.size();
  WRSN_REQUIRE(dc_out.size() == n, "batch span size mismatch");
  Watts lo = 0.0;
  for (std::size_t i = 0; i < n; ++i) lo = std::min(lo, rf_in[i]);
  WRSN_REQUIRE(lo >= 0.0, "negative RF input");

  const Watts sensitivity = params_.sensitivity;
  const double max_efficiency = params_.max_efficiency;
  const Watts knee = params_.knee;
  const Watts dc_cap = params_.dc_cap;
  for (std::size_t i = 0; i < n; ++i) {
    // efficiency() then dc_output(), expression for expression.
    const Watts rf = rf_in[i];
    const double eff =
        rf < sensitivity
            ? 0.0
            : max_efficiency * (1.0 - std::exp(-(rf - sensitivity) / knee));
    dc_out[i] = std::min(dc_cap, eff * rf);
  }
}

}  // namespace wrsn::wpt
