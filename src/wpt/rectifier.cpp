#include "wpt/rectifier.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace wrsn::wpt {

void RectifierParams::validate() const {
  if (sensitivity < 0.0) throw ConfigError("rectifier sensitivity < 0");
  if (max_efficiency <= 0.0 || max_efficiency > 1.0) {
    throw ConfigError("rectifier max_efficiency must be in (0, 1]");
  }
  if (knee <= 0.0) throw ConfigError("rectifier knee must be > 0");
  if (dc_cap <= 0.0) throw ConfigError("rectifier dc_cap must be > 0");
}

Rectifier::Rectifier(const RectifierParams& params) : params_(params) {
  params_.validate();
}

double Rectifier::efficiency(Watts rf_in) const {
  WRSN_REQUIRE(rf_in >= 0.0, "negative RF input");
  if (rf_in < params_.sensitivity) return 0.0;
  const double excess = rf_in - params_.sensitivity;
  return params_.max_efficiency * (1.0 - std::exp(-excess / params_.knee));
}

Watts Rectifier::dc_output(Watts rf_in) const {
  return std::min(params_.dc_cap, efficiency(rf_in) * rf_in);
}

}  // namespace wrsn::wpt
