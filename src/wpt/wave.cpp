#include "wpt/wave.hpp"

#include <cmath>

#include "common/check.hpp"

namespace wrsn::wpt {

Watts WaveSource::power_at_distance(Meters d) const {
  WRSN_REQUIRE(d >= 0.0, "negative distance");
  if (d > max_range) return 0.0;
  const double denom = (d + beta) * (d + beta);
  return alpha / denom;
}

std::complex<double> WaveSource::phasor_at(geom::Vec2 point) const {
  const Meters d = geom::distance(position, point);
  const Watts p = power_at_distance(d);
  if (p <= 0.0) return {0.0, 0.0};
  const Radians phase = phase_offset - propagation_phase(d, wavelength);
  return std::polar(std::sqrt(p), phase);
}

Watts superposed_rf_power(std::span<const WaveSource> sources,
                          geom::Vec2 point) {
  std::complex<double> total{0.0, 0.0};
  for (const WaveSource& s : sources) total += s.phasor_at(point);
  return std::norm(total);
}

Watts incoherent_rf_power(std::span<const WaveSource> sources,
                          geom::Vec2 point) {
  Watts total = 0.0;
  for (const WaveSource& s : sources) {
    total += s.power_at_distance(geom::distance(s.position, point));
  }
  return total;
}

Radians propagation_phase(Meters d, Meters lambda) {
  WRSN_REQUIRE(lambda > 0.0, "wavelength must be positive");
  return constants::kTwoPi * d / lambda;
}

}  // namespace wrsn::wpt
