#include "wpt/wave.hpp"

#include <cmath>

#include "common/check.hpp"

namespace wrsn::wpt {

Watts WaveSource::power_at_distance(Meters d) const {
  WRSN_REQUIRE(d >= 0.0, "negative distance");
  if (d > max_range) return 0.0;
  const double denom = (d + beta) * (d + beta);
  return alpha / denom;
}

std::complex<double> WaveSource::phasor_at(geom::Vec2 point) const {
  const Meters d = geom::distance(position, point);
  const Watts p = power_at_distance(d);
  if (p <= 0.0) return {0.0, 0.0};
  const Radians phase = phase_offset - propagation_phase(d, wavelength);
  return std::polar(std::sqrt(p), phase);
}

Watts superposed_rf_power(std::span<const WaveSource> sources,
                          geom::Vec2 point) {
  std::complex<double> total{0.0, 0.0};
  for (const WaveSource& s : sources) total += s.phasor_at(point);
  return std::norm(total);
}

Watts incoherent_rf_power(std::span<const WaveSource> sources,
                          geom::Vec2 point) {
  Watts total = 0.0;
  for (const WaveSource& s : sources) {
    total += s.power_at_distance(geom::distance(s.position, point));
  }
  return total;
}

void superposed_rf_power_batch(std::span<const WaveSource> sources,
                               std::span<const Meters> xs,
                               std::span<const Meters> ys,
                               std::span<Watts> out_rf,
                               std::span<double> scratch_im) {
  const std::size_t n = xs.size();
  WRSN_REQUIRE(ys.size() == n && out_rf.size() == n && scratch_im.size() == n,
               "batch span size mismatch");
  double* const re = out_rf.data();
  double* const im = scratch_im.data();
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = 0.0;
    im[i] = 0.0;
  }
  for (const WaveSource& s : sources) {
    WRSN_REQUIRE(s.wavelength > 0.0, "wavelength must be positive");
    const Meters sx = s.position.x;
    const Meters sy = s.position.y;
    const Watts alpha = s.alpha;
    const Meters beta = s.beta;
    const Meters max_range = s.max_range;
    const Radians phase_offset = s.phase_offset;
    const Meters lambda = s.wavelength;
    for (std::size_t i = 0; i < n; ++i) {
      // Expression-for-expression phasor_at: hypot distance (as
      // geom::distance), the decay law with its max_range zero, and the
      // carrier phase retarded by the propagation phase (kTwoPi * d /
      // lambda, same association).  The scalar path sums a zero phasor for
      // a powerless source; skipping instead can only differ in the sign
      // of a zero accumulator, which the final squaring erases.
      const Meters d = std::hypot(sx - xs[i], sy - ys[i]);
      const double denom = (d + beta) * (d + beta);
      const Watts p = d > max_range ? 0.0 : alpha / denom;
      if (p <= 0.0) continue;
      const double amp = std::sqrt(p);
      const Radians phase = phase_offset - constants::kTwoPi * d / lambda;
      re[i] += amp * std::cos(phase);
      im[i] += amp * std::sin(phase);
    }
  }
  for (std::size_t i = 0; i < n; ++i) re[i] = re[i] * re[i] + im[i] * im[i];
}

Radians propagation_phase(Meters d, Meters lambda) {
  WRSN_REQUIRE(lambda > 0.0, "wavelength must be positive");
  return constants::kTwoPi * d / lambda;
}

}  // namespace wrsn::wpt
