#include "detect/audit_planner.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wrsn::detect {

std::vector<net::NodeId> select_audit_nodes(const net::Network& network,
                                            const net::TrafficLoads& loads,
                                            std::size_t budget,
                                            AuditPlacement placement,
                                            Rng& rng) {
  budget = std::min(budget, network.size());
  if (budget == 0) return {};

  switch (placement) {
    case AuditPlacement::KeyRanked: {
      // Exactly the attacker's target ranking: cut vertices first (by
      // disconnect impact), then traffic.
      net::KeyNodeConfig cfg;
      cfg.rule = net::KeyNodeRule::Hybrid;
      cfg.max_count = budget;
      cfg.min_disconnect = 1;
      return net::select_key_nodes(network, loads, cfg);
    }
    case AuditPlacement::TopTraffic: {
      net::KeyNodeConfig cfg;
      cfg.rule = net::KeyNodeRule::TopTraffic;
      cfg.max_count = budget;
      return net::select_key_nodes(network, loads, cfg);
    }
    case AuditPlacement::Random: {
      std::vector<net::NodeId> all(network.size());
      for (net::NodeId id = 0; id < network.size(); ++id) all[id] = id;
      rng.shuffle(all);
      all.resize(budget);
      return all;
    }
  }
  WRSN_ASSERT(false);
  return {};
}

}  // namespace wrsn::detect
