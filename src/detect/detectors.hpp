// The deployable-defense catalogue.
//
// Node-side physical checks:
//   RssiPresenceDetector   — "is a carrier present while I'm being charged?"
//   NeighborVotingDetector — "do my neighbours also see the charger's field?"
// Base-station service audits:
//   ServiceAuditDetector   — escalations, deaths-while-begging, repeated
//                            emergency requests
//   DeathRateDetector      — too many deaths inside a sliding window
// Metered-node defenses (require coulomb-counter hardware):
//   EnergyDeltaDetector    — single-session delivered-vs-expected test
//   CusumShortfallDetector — sequential per-node shortfall accumulation
#pragma once

#include <set>
#include <vector>

#include "detect/detector.hpp"

namespace wrsn::detect {

/// Node-side RSSI check during sessions: fires when the observed carrier
/// power falls below `rssi_fraction` of the nominal docked RF.  CSA leaves a
/// strong carrier at the communication antenna, so this is evaded by design;
/// it catches chargers that merely pretend (no radiation).
class RssiPresenceDetector final : public Detector {
 public:
  explicit RssiPresenceDetector(double rssi_fraction = 0.05)
      : rssi_fraction_(rssi_fraction) {}
  std::string_view name() const override { return "rssi-presence"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  double rssi_fraction_;
};

/// Neighbourhood cross-check: a neighbour within `probe_range` of a charging
/// session probes the RF field and votes "anomalous" when it measures less
/// than `expected_fraction` of the field the benign model predicts at its
/// distance; `votes_to_fire` anomalies trigger detection.  Vacuous in sparse
/// deployments (no neighbour inside RF range) — quantified by the fig6 bench.
class NeighborVotingDetector final : public Detector {
 public:
  NeighborVotingDetector(Meters probe_range = 8.0,
                         double expected_fraction = 0.25,
                         std::size_t votes_to_fire = 2)
      : probe_range_(probe_range),
        expected_fraction_(expected_fraction),
        votes_to_fire_(votes_to_fire) {}
  std::string_view name() const override { return "neighbor-voting"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  Meters probe_range_;
  double expected_fraction_;
  std::size_t votes_to_fire_;
};

/// Base-station service audit: fires when escalations (requests unserved
/// past patience) exceed a budget calibrated on honest-but-queued service
/// (benign runs produce a handful from queueing tails), on any node that
/// dies with a request outstanding (honest service never lets that happen),
/// or on `emergency_limit` emergency requests from one node.
class ServiceAuditDetector final : public Detector {
 public:
  explicit ServiceAuditDetector(std::size_t escalation_limit = 8,
                                std::size_t emergency_limit = 3,
                                std::size_t died_waiting_limit = 2)
      : escalation_limit_(escalation_limit),
        emergency_limit_(emergency_limit),
        died_waiting_limit_(died_waiting_limit) {}
  std::string_view name() const override { return "service-audit"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  std::size_t escalation_limit_;
  std::size_t emergency_limit_;
  std::size_t died_waiting_limit_;
};

/// Death-rate anomaly: fires when `death_threshold` nodes die within any
/// `window` seconds.  The threshold must be calibrated against the benign
/// death rate (an honest but overloaded charger also loses nodes).
class DeathRateDetector final : public Detector {
 public:
  DeathRateDetector(std::size_t death_threshold = 5,
                    Seconds window = 86'400.0)
      : death_threshold_(death_threshold), window_(window) {}
  std::string_view name() const override { return "death-rate"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  std::size_t death_threshold_;
  Seconds window_;
};

/// Coulomb-counter single-session audit (hardware defense): nodes measuring
/// harvested energy compare it with the fleet-calibrated expectation
/// (measured/expected averages 1.0 on honest sessions); fires when
/// measured/expected < `ratio_threshold` on a session with expected gain of
/// at least `min_expected`.  `audit_fraction` of nodes carry the hardware
/// (selected deterministically).  The default threshold sits ~3.5 sigma
/// below the benign ratio distribution, for a per-session false-positive
/// rate of ~2e-4.
class EnergyDeltaDetector final : public Detector {
 public:
  EnergyDeltaDetector(double audit_fraction = 1.0,
                      double ratio_threshold = 0.30,
                      Joules min_expected = 500.0)
      : audit_fraction_(audit_fraction),
        ratio_threshold_(ratio_threshold),
        min_expected_(min_expected) {}
  /// Budgeted deployment: only the listed nodes carry meters
  /// (see detect/audit_planner.hpp for placement strategies).
  EnergyDeltaDetector(std::vector<net::NodeId> audited,
                      double ratio_threshold = 0.30,
                      Joules min_expected = 500.0)
      : audit_fraction_(0.0),
        audited_(audited.begin(), audited.end()),
        use_set_(true),
        ratio_threshold_(ratio_threshold),
        min_expected_(min_expected) {}
  std::string_view name() const override { return "energy-delta"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  double audit_fraction_;
  std::set<net::NodeId> audited_;
  bool use_set_ = false;
  double ratio_threshold_;
  Joules min_expected_;
};

/// Sequential CUSUM on per-node session shortfalls (hardware defense):
/// accumulates standardized negative deviations of measured/expected from
/// the benign mean and fires when the statistic exceeds `h`.
class CusumShortfallDetector final : public Detector {
 public:
  CusumShortfallDetector(double audit_fraction = 1.0, double k = 0.5,
                         double h = 4.0)
      : audit_fraction_(audit_fraction), k_(k), h_(h) {}
  /// Budgeted deployment over an explicit metered-node set.
  CusumShortfallDetector(std::vector<net::NodeId> audited, double k = 0.5,
                         double h = 4.0)
      : audit_fraction_(0.0),
        audited_(audited.begin(), audited.end()),
        use_set_(true),
        k_(k),
        h_(h) {}
  std::string_view name() const override { return "cusum-shortfall"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  double audit_fraction_;
  std::set<net::NodeId> audited_;
  bool use_set_ = false;
  double k_;
  double h_;
};

/// Fleet-level sequential audit (hardware defense): one CUSUM over ALL
/// metered sessions in time order, regardless of node.  This is the only
/// sequential test that catches an attacker who short-changes each victim
/// exactly once (per-node statistics never accumulate), at the cost of a
/// larger benign sample to stay calibrated against.
class FleetCusumDetector final : public Detector {
 public:
  FleetCusumDetector(double audit_fraction = 1.0, double k = 0.5,
                     double h = 8.0)
      : audit_fraction_(audit_fraction), k_(k), h_(h) {}
  /// Budgeted deployment over an explicit metered-node set.
  FleetCusumDetector(std::vector<net::NodeId> audited, double k = 0.5,
                     double h = 8.0)
      : audit_fraction_(0.0),
        audited_(audited.begin(), audited.end()),
        use_set_(true),
        k_(k),
        h_(h) {}
  std::string_view name() const override { return "fleet-cusum"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  double audit_fraction_;
  std::set<net::NodeId> audited_;
  bool use_set_ = false;
  double k_;
  double h_;
};

/// Death-rate threshold a defender calibrates against the fleet's known
/// background failure rate: mean + 3 sigma of the Poisson count per window,
/// plus one, floored at 5 (the small-fleet default).
std::size_t calibrated_death_threshold(double expected_deaths_per_window);

/// Audit thresholds a defender tunes to the deployment's benign profile
/// (all of them scale with fleet size; the defaults fit ~100 nodes).
struct SuiteCalibration {
  std::size_t death_threshold = 5;
  std::size_t escalation_limit = 8;
  std::size_t died_waiting_limit = 2;

  /// Scales the audit budgets for a deployment of `node_count` nodes with
  /// the given expected background deaths per monitoring window.
  static SuiteCalibration for_deployment(std::size_t node_count,
                                         double expected_deaths_per_window);
};

/// The standard deployed suite (everything except the metered-node hardware
/// defenses, which the evaluation enables separately).
DetectorSuite make_deployed_suite(const SuiteCalibration& cal = {});

/// The full suite including coulomb-counter defenses on every node.
DetectorSuite make_hardened_suite(const SuiteCalibration& cal = {});

}  // namespace wrsn::detect
