#include "detect/detectors.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "detect/metered.hpp"
#include "obs/metrics.hpp"

namespace wrsn::detect {

// Definitions for detect/metered.hpp — shared with the adaptive detectors,
// which must draw noise and decide placement exactly like the static suite.

double node_uniform(std::uint64_t seed, net::NodeId node,
                    std::string_view purpose) {
  Rng rng(seed);
  return rng.fork(purpose).fork(std::to_string(node)).uniform();
}

double session_noise(const DetectorContext& ctx, net::NodeId node,
                     std::uint64_t ordinal, Joules capacity) {
  Rng rng(ctx.noise_seed);
  return rng.fork("soc-noise")
      .fork(std::to_string(node))
      .fork(std::to_string(ordinal))
      .normal(0.0, ctx.soc_noise_fraction * capacity);
}

bool node_audited(bool use_set, const std::set<net::NodeId>& audited,
                  double fraction, std::uint64_t seed, net::NodeId node) {
  if (use_set) return audited.count(node) > 0;
  return node_uniform(seed, node, "coulomb-equip") < fraction;
}

void DetectorSuite::add(std::unique_ptr<Detector> detector) {
  WRSN_REQUIRE(detector != nullptr, "null detector");
  detectors_.push_back(std::move(detector));
}

std::vector<SuiteResult> DetectorSuite::run(const sim::Trace& trace,
                                            const DetectorContext& ctx) const {
  std::vector<SuiteResult> results;
  results.reserve(detectors_.size());
  WRSN_OBS_COUNT(kDetectSuiteRuns);
  for (const auto& detector : detectors_) {
    std::optional<Detection> detection;
    {
      WRSN_OBS_SPAN_NAMED("detect." + std::string(detector->name()) +
                          ".analyze_ns");
      detection = detector->analyze(trace, ctx);
    }
    if (detection.has_value()) WRSN_OBS_COUNT(kDetectDetections);
    results.push_back({std::string(detector->name()), std::move(detection)});
  }
  return results;
}

std::optional<Detection> DetectorSuite::earliest(
    const std::vector<SuiteResult>& results) {
  std::optional<Detection> best;
  for (const SuiteResult& result : results) {
    if (!result.detection.has_value()) continue;
    if (!best.has_value() || result.detection->time < best->time) {
      best = result.detection;
    }
  }
  return best;
}

std::optional<Detection> RssiPresenceDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  WRSN_REQUIRE(ctx.charging_model != nullptr, "context missing charging model");
  const Watts nominal_rf = ctx.charging_model->rf_at_distance(
      ctx.charging_model->params().dock_distance);
  for (const sim::SessionRecord& s : trace.sessions) {
    if (s.rf_observed < rssi_fraction_ * nominal_rf) {
      return Detection{s.end, s.node,
                       "no carrier observed during claimed charging session"};
    }
  }
  return std::nullopt;
}

std::optional<Detection> NeighborVotingDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  WRSN_REQUIRE(ctx.charging_model != nullptr, "context missing charging model");
  std::size_t votes = 0;
  for (const sim::SessionRecord& s : trace.sessions) {
    if (!(s.nearest_probe_distance <= probe_range_)) continue;  // inf-safe
    const Watts expected =
        ctx.charging_model->rf_at_distance(s.nearest_probe_distance);
    if (expected <= 0.0) continue;
    if (s.rf_neighbor_probe < expected_fraction_ * expected) {
      ++votes;
      if (votes >= votes_to_fire_) {
        return Detection{s.end, s.node,
                         "neighbours report missing charger field"};
      }
    }
  }
  return std::nullopt;
}

std::optional<Detection> ServiceAuditDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  (void)ctx;
  std::optional<Detection> best;
  const auto consider = [&best](Seconds time, net::NodeId node,
                                std::string reason) {
    if (!best.has_value() || time < best->time) {
      best = Detection{time, node, std::move(reason)};
    }
  };

  if (trace.escalations.size() >= escalation_limit_) {
    const sim::EscalationRecord& e = trace.escalations[escalation_limit_ - 1];
    consider(e.time, e.node, "escalation count exceeds calibrated budget");
  }
  // A single died-while-waiting event is ambiguous (a hardware failure can
  // strike a queued node); repeated ones implicate the charging service.
  std::size_t died_waiting = 0;
  for (const sim::DeathRecord& d : trace.deaths) {
    if (d.request_outstanding && ++died_waiting >= died_waiting_limit_) {
      consider(d.time, d.node, "nodes keep dying with requests outstanding");
      break;  // deaths are time-ordered
    }
  }
  std::map<net::NodeId, std::size_t> emergency_counts;
  for (const sim::RequestRecord& r : trace.requests) {
    if (!r.emergency) continue;
    if (++emergency_counts[r.node] >= emergency_limit_) {
      consider(r.time, r.node, "repeated emergency requests from one node");
      break;  // requests are time-ordered; first node to hit limit is earliest
    }
  }
  return best;
}

std::optional<Detection> DeathRateDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  (void)ctx;
  std::deque<Seconds> window_deaths;
  for (const sim::DeathRecord& d : trace.deaths) {
    window_deaths.push_back(d.time);
    // The monitoring window is OPEN at its left edge, (t - window_, t]: a
    // death exactly window_ seconds old has aged out, matching the
    // calibration's expected-deaths-per-window model.  (The old `<`
    // eviction kept that boundary death, silently firing on threshold
    // deaths spanning a closed window of length window_.)
    while (!window_deaths.empty() &&
           window_deaths.front() <= d.time - window_) {
      window_deaths.pop_front();
    }
    if (window_deaths.size() >= death_threshold_) {
      return Detection{d.time, d.node, "death rate exceeds calibrated bound"};
    }
  }
  return std::nullopt;
}

std::optional<Detection> EnergyDeltaDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  WRSN_REQUIRE(ctx.network != nullptr, "context missing network");
  SessionOrdinals ordinals;
  for (std::size_t i = 0; i < trace.sessions.size(); ++i) {
    const sim::SessionRecord& s = trace.sessions[i];
    const std::uint64_t ordinal = ordinals.next(s.node);
    if (s.expected_gain < min_expected_) continue;
    if (!node_audited(use_set_, audited_, audit_fraction_, ctx.noise_seed,
                      s.node)) {
      continue;
    }
    WRSN_OBS_COUNT(kDetectSessionsAudited);
    const Joules capacity = ctx.network->node(s.node).battery_capacity;
    const Joules measured =
        std::max(0.0, s.delivered + session_noise(ctx, s.node, ordinal, capacity));
    if (measured / s.expected_gain < ratio_threshold_) {
      return Detection{s.end, s.node,
                       "metered harvest far below session expectation"};
    }
  }
  return std::nullopt;
}

std::optional<Detection> CusumShortfallDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  WRSN_REQUIRE(ctx.network != nullptr, "context missing network");
  // Expectations are fleet-calibrated: benign measured/expected averages 1
  // with standard deviation ~= the benign gain CV.
  const double sigma = std::max(1e-9, ctx.benign_gain_cv);
  std::map<net::NodeId, double> stat;
  SessionOrdinals ordinals;
  for (std::size_t i = 0; i < trace.sessions.size(); ++i) {
    const sim::SessionRecord& s = trace.sessions[i];
    const std::uint64_t ordinal = ordinals.next(s.node);
    if (s.expected_gain <= 0.0) continue;
    if (!node_audited(use_set_, audited_, audit_fraction_, ctx.noise_seed,
                      s.node)) {
      continue;
    }
    WRSN_OBS_COUNT(kDetectSessionsAudited);
    const Joules capacity = ctx.network->node(s.node).battery_capacity;
    const Joules measured =
        std::max(0.0, s.delivered + session_noise(ctx, s.node, ordinal, capacity));
    const double ratio = measured / s.expected_gain;
    double& value = stat[s.node];
    value = std::max(0.0, value + (1.0 - ratio) / sigma - k_);
    if (value > h_) {
      return Detection{s.end, s.node,
                       "sequential harvest shortfall exceeds CUSUM bound"};
    }
  }
  return std::nullopt;
}

std::optional<Detection> FleetCusumDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  WRSN_REQUIRE(ctx.network != nullptr, "context missing network");
  const double sigma = std::max(1e-9, ctx.benign_gain_cv);
  double stat = 0.0;
  SessionOrdinals ordinals;
  for (std::size_t i = 0; i < trace.sessions.size(); ++i) {
    const sim::SessionRecord& s = trace.sessions[i];
    const std::uint64_t ordinal = ordinals.next(s.node);
    if (s.expected_gain <= 0.0) continue;
    if (!node_audited(use_set_, audited_, audit_fraction_, ctx.noise_seed,
                      s.node)) {
      continue;
    }
    WRSN_OBS_COUNT(kDetectSessionsAudited);
    const Joules capacity = ctx.network->node(s.node).battery_capacity;
    const Joules measured =
        std::max(0.0, s.delivered + session_noise(ctx, s.node, ordinal, capacity));
    const double ratio = measured / s.expected_gain;
    stat = std::max(0.0, stat + (1.0 - ratio) / sigma - k_);
    if (stat > h_) {
      return Detection{s.end, net::kInvalidNode,
                       "fleet-wide harvest shortfall exceeds CUSUM bound"};
    }
  }
  return std::nullopt;
}

std::size_t calibrated_death_threshold(double expected_deaths_per_window) {
  WRSN_REQUIRE(expected_deaths_per_window >= 0.0, "negative rate");
  const double bound = expected_deaths_per_window +
                       3.0 * std::sqrt(expected_deaths_per_window) + 1.0;
  return std::max<std::size_t>(5, static_cast<std::size_t>(std::ceil(bound)));
}

SuiteCalibration SuiteCalibration::for_deployment(
    std::size_t node_count, double expected_deaths_per_window) {
  SuiteCalibration cal;
  cal.death_threshold = calibrated_death_threshold(expected_deaths_per_window);
  // Escalation counts and died-while-waiting incidents both scale with the
  // number of sessions a mission generates, i.e. with node count.
  cal.escalation_limit = std::max<std::size_t>(8, node_count / 12);
  cal.died_waiting_limit = std::max<std::size_t>(2, 1 + node_count / 150);
  return cal;
}

DetectorSuite make_deployed_suite(const SuiteCalibration& cal) {
  DetectorSuite suite;
  suite.add(std::make_unique<RssiPresenceDetector>());
  suite.add(std::make_unique<NeighborVotingDetector>());
  suite.add(std::make_unique<ServiceAuditDetector>(cal.escalation_limit, 3,
                                                   cal.died_waiting_limit));
  suite.add(std::make_unique<DeathRateDetector>(cal.death_threshold));
  return suite;
}

DetectorSuite make_hardened_suite(const SuiteCalibration& cal) {
  DetectorSuite suite = make_deployed_suite(cal);
  suite.add(std::make_unique<EnergyDeltaDetector>());
  suite.add(std::make_unique<CusumShortfallDetector>());
  suite.add(std::make_unique<FleetCusumDetector>());
  return suite;
}

}  // namespace wrsn::detect
