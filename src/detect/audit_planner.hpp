// Defense planning: placing a limited budget of coulomb-counter audits.
//
// Metering every node defeats the Charging Spoofing Attack (fig6), but the
// hardware costs real money.  The defender's edge is symmetry: the attacker
// targets structurally important nodes, and the defender can run the exact
// same key-node analysis to decide which nodes to meter.  This module
// selects audit placements under a budget and plugs them into the metered
// detectors.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "net/keynodes.hpp"
#include "net/network.hpp"

namespace wrsn::detect {

/// Placement strategies compared by the fig11 bench.
enum class AuditPlacement {
  KeyRanked,   ///< meter the key-node ranking head (mirror the attacker)
  TopTraffic,  ///< meter the highest-traffic nodes
  Random,      ///< meter uniformly random nodes
};

/// Picks up to `budget` nodes to equip with coulomb counters.
std::vector<net::NodeId> select_audit_nodes(const net::Network& network,
                                            const net::TrafficLoads& loads,
                                            std::size_t budget,
                                            AuditPlacement placement,
                                            Rng& rng);

}  // namespace wrsn::detect
