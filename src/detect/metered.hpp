// Shared deterministic-measurement helpers for metered-node detectors.
//
// Every detector that reads a coulomb-counter measurement MUST draw its
// gauge noise through `session_noise` keyed by the node's own session
// ordinal, and decide hardware placement through `node_audited` — the
// ordinal keying is a pinned regression (detect_test), and two detectors
// disagreeing on either would make their verdicts incomparable.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string_view>

#include "detect/detector.hpp"

namespace wrsn::detect {

/// Deterministic per-(seed, node) uniform draw; used to pick which nodes
/// carry audit hardware so results are reproducible across detectors.
double node_uniform(std::uint64_t seed, net::NodeId node,
                    std::string_view purpose);

/// Deterministic per-(seed, node, per-node ordinal) gauge noise draw.  The
/// ordinal counts the node's *own* sessions in trace order, so a node's
/// noise stream is a pure function of its own session history — an
/// unrelated session elsewhere in the trace cannot shift the draws and flip
/// detection outcomes between otherwise-identical scenarios.  (The old key
/// was the global session index, which did exactly that.)
double session_noise(const DetectorContext& ctx, net::NodeId node,
                     std::uint64_t ordinal, Joules capacity);

/// Tracks per-node session ordinals while walking a trace.  Every session
/// of a node advances its ordinal — including ones a detector then skips —
/// so the noise draw for a given (node, nth-session) pair is stable across
/// detectors with different filters.
class SessionOrdinals {
 public:
  std::uint64_t next(net::NodeId node) { return counts_[node]++; }

 private:
  std::map<net::NodeId, std::uint64_t> counts_;
};

bool node_audited(bool use_set, const std::set<net::NodeId>& audited,
                  double fraction, std::uint64_t seed, net::NodeId node);

}  // namespace wrsn::detect
