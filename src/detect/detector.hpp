// Attack-detection framework.
//
// Detectors analyze the observable projection of a simulation trace — they
// must never read `SessionRecord::kind` (the ground truth).  Each detector
// models one defense the network operator could deploy; the fig6 bench runs
// the whole suite against every attack strategy and against benign traces
// (to report false positives).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "net/network.hpp"
#include "sim/trace.hpp"
#include "wpt/charging_model.hpp"

namespace wrsn::detect {

/// Everything a deployed detector may legitimately know about the system.
struct DetectorContext {
  const net::Network* network = nullptr;
  const wpt::ChargingModel* charging_model = nullptr;
  /// Nominal DC harvest rate of a docked session [W].
  Watts nominal_dc = 0.0;
  /// Calibrated benign session-gain distribution (mean/cv of
  /// delivered/expected on honest sessions).
  double benign_gain_mean = 0.85;
  double benign_gain_cv = 0.20;
  /// Sigma of a node's per-session energy measurement, as a fraction of its
  /// battery capacity (commodity SoC gauge noise).
  double soc_noise_fraction = 0.02;
  /// Seed for the deterministic measurement-noise stream.
  std::uint64_t noise_seed = 0x5eed;
  /// Mission end [s] (analysis horizon).
  Seconds horizon = 0.0;
  /// Deployment prior for threshold-adapting detectors: expected background
  /// deaths per death-rate monitoring window (what the static calibration
  /// was computed from; 0 = unknown).
  double expected_deaths_per_window = 0.0;
};

/// A detector verdict: the first moment the defense fires.
struct Detection {
  Seconds time = 0.0;
  net::NodeId node = net::kInvalidNode;  ///< offending node, if localized
  std::string reason;
};

/// Offline trace analyzer modeling one deployable defense.
class Detector {
 public:
  virtual ~Detector() = default;
  virtual std::string_view name() const = 0;
  /// Returns the earliest detection, or nullopt if the trace looks benign.
  virtual std::optional<Detection> analyze(
      const sim::Trace& trace, const DetectorContext& ctx) const = 0;
};

/// Runs a set of detectors and reports each verdict.
struct SuiteResult {
  std::string detector;
  std::optional<Detection> detection;
};

class DetectorSuite {
 public:
  void add(std::unique_ptr<Detector> detector);
  /// Runs all detectors.
  std::vector<SuiteResult> run(const sim::Trace& trace,
                               const DetectorContext& ctx) const;
  /// Earliest detection across all detectors, if any.
  static std::optional<Detection> earliest(
      const std::vector<SuiteResult>& results);
  std::size_t size() const { return detectors_.size(); }

 private:
  std::vector<std::unique_ptr<Detector>> detectors_;
};

}  // namespace wrsn::detect
