#include "detect/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "detect/metered.hpp"

namespace wrsn::detect {
namespace {

/// The calibration rule shared with calibrated_death_threshold, without the
/// small-fleet floor (the adaptive detectors floor at the STATIC threshold
/// instead, which already carries it).
std::size_t recalibrated_bound(double expected, double quantile) {
  WRSN_ASSERT(expected >= 0.0);
  const double bound = expected + quantile * std::sqrt(expected) + 1.0;
  return static_cast<std::size_t>(std::ceil(bound));
}

/// Deterministic median: middle element of the sorted copy (upper-middle on
/// even counts) — no averaging, so the estimate is always a sample value.
double median_of(std::vector<double> values) {
  WRSN_ASSERT(!values.empty());
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + std::ptrdiff_t(mid),
                   values.end());
  return values[mid];
}

}  // namespace

std::optional<Detection> AdaptiveDeathRateDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  const Seconds tune = params_.window;
  // Shrink the observed rate toward the deployment prior (the context's
  // expected background deaths per monitoring window) with min_samples
  // pseudo-windows of weight, so one quiet or stormy early window cannot
  // whipsaw the bound.
  const double prior = ctx.expected_deaths_per_window;
  const double pseudo = double(params_.min_samples);

  std::deque<Seconds> recent;
  Seconds tune_end = tune;
  std::size_t completed = 0;
  std::size_t seen = 0;  // deaths inside completed tuning windows
  std::size_t threshold = base_threshold_;
  for (const sim::DeathRecord& d : trace.deaths) {
    while (tune_end <= d.time) {
      ++completed;
      if (completed >= params_.min_samples) {
        const double observed_rate =
            double(seen) / double(completed) * (monitor_window_ / tune);
        const double rate = (prior * pseudo + observed_rate * completed) /
                            (pseudo + double(completed));
        threshold = std::max(base_threshold_,
                             recalibrated_bound(rate, params_.quantile));
      }
      tune_end += tune;
    }
    ++seen;
    recent.push_back(d.time);
    // Same OPEN left edge as the static detector: (t - window, t].
    while (!recent.empty() && recent.front() <= d.time - monitor_window_) {
      recent.pop_front();
    }
    if (recent.size() >= threshold) {
      return Detection{d.time, d.node,
                       "death rate exceeds adaptively re-tuned bound"};
    }
  }
  return std::nullopt;
}

std::optional<Detection> AdaptiveServiceAuditDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  std::optional<Detection> best;
  const auto consider = [&best](Seconds time, net::NodeId node,
                                std::string reason) {
    if (!best.has_value() || time < best->time) {
      best = Detection{time, node, std::move(reason)};
    }
  };

  // Escalation budget, re-tuned per window: the cumulative count is tested
  // against expected-so-far + q*sigma + 1 under the estimated benign
  // escalation rate, never below the static budget.  The estimate only uses
  // COMPLETED windows; its prior spreads the static budget over the horizon.
  const Seconds tune = params_.window;
  const double prior_per_window =
      ctx.horizon > 0.0 ? double(cal_.escalation_limit) * tune / ctx.horizon
                        : 0.0;
  const double pseudo = double(params_.min_samples);
  Seconds tune_end = tune;
  std::size_t completed = 0;
  std::size_t seen = 0;
  double rate = prior_per_window;  // per tuning window
  for (std::size_t i = 0; i < trace.escalations.size(); ++i) {
    const sim::EscalationRecord& e = trace.escalations[i];
    while (tune_end <= e.time) {
      ++completed;
      if (completed >= params_.min_samples) {
        rate = (prior_per_window * pseudo + double(seen)) /
               (pseudo + double(completed));
      }
      tune_end += tune;
    }
    ++seen;
    const double expected_so_far = rate * (e.time / tune);
    const std::size_t budget =
        std::max(cal_.escalation_limit,
                 recalibrated_bound(expected_so_far, params_.quantile));
    if (i + 1 >= budget) {
      consider(e.time, e.node,
               "escalation count exceeds adaptively re-tuned budget");
      break;  // escalations are time-ordered; first breach is earliest
    }
  }

  // Died-waiting and repeated-emergency rules are the static ones: both are
  // event-quality signals (honest service never produces them in volume),
  // not rate statistics worth re-tuning.
  std::size_t died_waiting = 0;
  for (const sim::DeathRecord& d : trace.deaths) {
    if (d.request_outstanding && ++died_waiting >= cal_.died_waiting_limit) {
      consider(d.time, d.node, "nodes keep dying with requests outstanding");
      break;
    }
  }
  std::map<net::NodeId, std::size_t> emergency_counts;
  for (const sim::RequestRecord& r : trace.requests) {
    if (!r.emergency) continue;
    if (++emergency_counts[r.node] >= emergency_limit_) {
      consider(r.time, r.node, "repeated emergency requests from one node");
      break;
    }
  }
  return best;
}

std::optional<Detection> AdaptiveEnergyDeltaDetector::analyze(
    const sim::Trace& trace, const DetectorContext& ctx) const {
  WRSN_REQUIRE(ctx.network != nullptr, "context missing network");
  const Seconds tune = params_.window;
  const double cv = std::max(1e-9, ctx.benign_gain_cv);

  SessionOrdinals ordinals;
  std::vector<double> window_ratios;
  std::vector<double> window_medians;
  Seconds tune_end = tune;
  double threshold = base_threshold_;
  for (const sim::SessionRecord& s : trace.sessions) {
    const std::uint64_t ordinal = ordinals.next(s.node);
    while (tune_end <= s.end) {
      // Windows with too few audited samples do not contribute a median —
      // an empty window says nothing about the benign ratio distribution.
      if (window_ratios.size() >= 3) {
        window_medians.push_back(median_of(std::move(window_ratios)));
        window_ratios.clear();
        if (window_medians.size() >= params_.min_samples) {
          const double m = median_of(window_medians);
          threshold = std::clamp(m - params_.quantile * cv * m,
                                 base_threshold_, 0.9);
        }
      }
      tune_end += tune;
    }
    if (s.expected_gain < min_expected_) continue;
    if (!node_audited(/*use_set=*/false, /*audited=*/{}, audit_fraction_,
                      ctx.noise_seed, s.node)) {
      continue;
    }
    const Joules capacity = ctx.network->node(s.node).battery_capacity;
    const Joules measured = std::max(
        0.0, s.delivered + session_noise(ctx, s.node, ordinal, capacity));
    const double ratio = measured / s.expected_gain;
    // The current session is judged by thresholds tuned on PRIOR windows
    // only, then joins the estimation sample.
    if (ratio < threshold) {
      return Detection{s.end, s.node,
                       "metered harvest below adaptively re-tuned bound"};
    }
    window_ratios.push_back(ratio);
  }
  return std::nullopt;
}

DetectorSuite make_adaptive_suite(const SuiteCalibration& cal,
                                  const policy::DefenderPolicyParams& params,
                                  bool hardened) {
  params.validate();
  DetectorSuite suite;
  suite.add(std::make_unique<RssiPresenceDetector>());
  suite.add(std::make_unique<NeighborVotingDetector>());
  suite.add(std::make_unique<AdaptiveServiceAuditDetector>(cal, params));
  suite.add(std::make_unique<AdaptiveDeathRateDetector>(cal.death_threshold,
                                                        params));
  if (hardened) {
    suite.add(std::make_unique<AdaptiveEnergyDeltaDetector>(params));
    suite.add(std::make_unique<CusumShortfallDetector>());
    suite.add(std::make_unique<FleetCusumDetector>());
  }
  return suite;
}

}  // namespace wrsn::detect
