// Threshold-adapting defenses (the defender half of the policy seam,
// DESIGN.md §15).
//
// Each adaptive detector re-tunes one knob of its static counterpart per
// trace window: it walks the trace chronologically, closes an estimation
// window every `DefenderPolicyParams::window` seconds, and recalibrates the
// knob from everything observed BEFORE the current window (never from it —
// the statistic under test must not tune its own threshold).  All of it is
// plain deterministic arithmetic over the trace; no randomness is consumed,
// so the adaptive suite keeps every bit-identical-replay guarantee the
// static one has.
//
//   AdaptiveDeathRateDetector    — death-rate knob: the death threshold is
//     re-derived from the observed background death rate with the same
//     mean + q*sqrt(mean) + 1 rule the deployment calibration uses, floored
//     at the static threshold.  Under a benign standing-fault mix the
//     observed rate rises, the bound rises, and the PR-5 false-positive
//     storm shrinks; the floor guarantees the adaptive detector never fires
//     where the static one stays silent.
//   AdaptiveServiceAuditDetector — audit-budget knob: the escalation budget
//     becomes a time-scaled cumulative bound (expected escalations so far
//     + q sigma + 1, floored at the static budget); died-waiting and
//     emergency rules stay static.
//   AdaptiveEnergyDeltaDetector  — gain knob (hardened tier): the
//     single-session audit threshold is re-derived from the MEDIAN audited
//     measured/expected ratio of completed windows (median, not mean, so a
//     minority of spoofed sessions cannot drag the estimate down), raised
//     toward median - q*cv*median when the observed fleet runs tight.
//     Sharper than static 0.30 against partial-cancel leaks; never drops
//     below the static threshold.
#pragma once

#include "detect/detector.hpp"
#include "detect/detectors.hpp"
#include "policy/policy.hpp"

namespace wrsn::detect {

class AdaptiveDeathRateDetector final : public Detector {
 public:
  AdaptiveDeathRateDetector(std::size_t base_threshold,
                            const policy::DefenderPolicyParams& params,
                            Seconds monitor_window = 86'400.0)
      : base_threshold_(base_threshold),
        params_(params),
        monitor_window_(monitor_window) {}
  std::string_view name() const override { return "death-rate-adaptive"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  std::size_t base_threshold_;
  policy::DefenderPolicyParams params_;
  Seconds monitor_window_;
};

class AdaptiveServiceAuditDetector final : public Detector {
 public:
  AdaptiveServiceAuditDetector(const SuiteCalibration& cal,
                               const policy::DefenderPolicyParams& params,
                               std::size_t emergency_limit = 3)
      : cal_(cal), params_(params), emergency_limit_(emergency_limit) {}
  std::string_view name() const override { return "service-audit-adaptive"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  SuiteCalibration cal_;
  policy::DefenderPolicyParams params_;
  std::size_t emergency_limit_;
};

class AdaptiveEnergyDeltaDetector final : public Detector {
 public:
  AdaptiveEnergyDeltaDetector(const policy::DefenderPolicyParams& params,
                              double audit_fraction = 1.0,
                              double base_threshold = 0.30,
                              Joules min_expected = 500.0)
      : params_(params),
        audit_fraction_(audit_fraction),
        base_threshold_(base_threshold),
        min_expected_(min_expected) {}
  std::string_view name() const override { return "energy-delta-adaptive"; }
  std::optional<Detection> analyze(const sim::Trace& trace,
                                   const DetectorContext& ctx) const override;

 private:
  policy::DefenderPolicyParams params_;
  double audit_fraction_;
  double base_threshold_;
  Joules min_expected_;
};

/// The adaptive counterpart of make_deployed_suite / make_hardened_suite:
/// same detector lineup, with the death-rate, service-audit, and (hardened
/// only) energy-delta members replaced by their threshold-adapting versions.
DetectorSuite make_adaptive_suite(const SuiteCalibration& cal,
                                  const policy::DefenderPolicyParams& params,
                                  bool hardened);

}  // namespace wrsn::detect
