#include "fault/injector.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace wrsn::fault {

FaultInjector::FaultInjector(sim::World& world, FaultPlan plan,
                             FaultHooks hooks, Rng rng)
    : world_(world),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      burst_rng_(rng.fork("burst-exec")),
      drift_rng_(rng.fork("drift-exec")),
      escalation_rng_(rng.fork("escalation-exec")) {}

FaultInjector::~FaultInjector() {
  WRSN_OBS_ADD(kFaultMcBreakdowns, double(stats_.mc_breakdowns));
  WRSN_OBS_ADD(kFaultMcRepairs, double(stats_.mc_repairs));
  WRSN_OBS_ADD(kFaultNodeBurstKills, double(stats_.node_burst_kills));
  WRSN_OBS_ADD(kFaultPhaseNoiseWindows, double(stats_.phase_noise_windows));
  WRSN_OBS_ADD(kFaultEscalationsDropped,
               double(stats_.escalations_dropped));
  WRSN_OBS_ADD(kFaultEscalationsDelayed,
               double(stats_.escalations_delayed));
  WRSN_OBS_ADD(kFaultDriftNodes, double(stats_.drift_nodes));
  WRSN_OBS_ADD(kFaultAbsorbed, double(stats_.absorbed));
  WRSN_OBS_ADD(kFaultMcHandoffs, double(stats_.mc_handoffs));
}

void FaultInjector::arm() {
  WRSN_REQUIRE(!armed_, "fault injector already armed");
  armed_ = true;
  sim::Simulator& sim = world_.simulator();
  const Seconds now = sim.now();

  for (const Outage& outage : plan_.mc_outages) {
    const bool permanent = !std::isfinite(outage.end);
    sim.schedule_at(std::max(now, outage.start), [this, permanent] {
      if (hooks_.mc_breakdown) {
        hooks_.mc_breakdown(plan_.mc_budget_loss, permanent);
        ++stats_.mc_breakdowns;
        if (permanent && hooks_.mc_permanent_loss) {
          hooks_.mc_permanent_loss();
          ++stats_.mc_handoffs;
        }
      } else {
        ++stats_.absorbed;
      }
    });
    if (!permanent) {
      sim.schedule_at(std::max(now, outage.end), [this] {
        if (hooks_.mc_repair) {
          hooks_.mc_repair();
          ++stats_.mc_repairs;
        } else {
          ++stats_.absorbed;
        }
      });
    }
  }

  for (const FaultEvent& ev : plan_.events) {
    sim.schedule_at(std::max(now, ev.time),
                    [this, ev] { fire_event(ev); });
  }

  if (plan_.escalation_drop_prob > 0.0 || plan_.escalation_delay_prob > 0.0) {
    world_.set_escalation_interceptor(
        [this](net::NodeId id) { return intercept_escalation(id); });
  }
}

void FaultInjector::fire_event(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::NodeBurst:
      fire_node_burst(ev.count);
      break;
    case FaultKind::PhaseNoise: {
      if (!hooks_.phase_noise) {
        ++stats_.absorbed;
        break;
      }
      hooks_.phase_noise(ev.magnitude);
      ++stats_.phase_noise_windows;
      world_.simulator().schedule_at(
          world_.simulator().now() + ev.duration, [this] {
            if (hooks_.phase_noise) hooks_.phase_noise(1.0);
          });
      break;
    }
    case FaultKind::BatteryDrift:
      fire_battery_drift(ev.magnitude, ev.duration);
      break;
  }
}

void FaultInjector::fire_node_burst(std::size_t count) {
  const std::size_t n = world_.network().size();
  if (n == 0) {
    ++stats_.absorbed;
    return;
  }
  // Victims are drawn over ALL node ids (dead draws are absorbed), so the
  // draw sequence never depends on the alive set — one fewer coupling to
  // reason about when pinning Fast to Reference.
  for (std::size_t i = 0; i < count; ++i) {
    const auto id = static_cast<net::NodeId>(
        burst_rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (world_.inject_hardware_failure(id)) {
      ++stats_.node_burst_kills;
    } else {
      ++stats_.absorbed;
    }
  }
}

void FaultInjector::fire_battery_drift(Watts power, Seconds duration) {
  const std::size_t n = world_.network().size();
  if (n == 0) {
    ++stats_.absorbed;
    return;
  }
  const auto id = static_cast<net::NodeId>(
      drift_rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  if (!world_.set_self_discharge(id, power)) {
    ++stats_.absorbed;
    return;
  }
  ++stats_.drift_nodes;
  WRSN_LOG(Debug) << "battery drift of " << power << " W on node " << id;
  if (duration > 0.0) {
    world_.simulator().schedule_at(
        world_.simulator().now() + duration,
        [this, id] { world_.set_self_discharge(id, 0.0); });
  }
}

sim::EscalationDecision FaultInjector::intercept_escalation(net::NodeId id) {
  (void)id;
  const double u = escalation_rng_.uniform();
  if (u < plan_.escalation_drop_prob) {
    ++stats_.escalations_dropped;
    return {sim::EscalationAction::Drop, 0.0};
  }
  if (u < plan_.escalation_drop_prob + plan_.escalation_delay_prob) {
    ++stats_.escalations_delayed;
    const Seconds delay =
        escalation_rng_.uniform(0.0, plan_.escalation_delay_max);
    return {sim::EscalationAction::Delay, delay};
  }
  return {sim::EscalationAction::Deliver, 0.0};
}

}  // namespace wrsn::fault
