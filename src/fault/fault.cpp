#include "fault/fault.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace wrsn::fault {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void require_rate(const char* name, Seconds value) {
  if (value < 0.0) {
    throw ConfigError(std::string("faults.") + name + " must be >= 0");
  }
}

void require_prob(const char* name, double value) {
  if (value < 0.0 || value > 1.0) {
    throw ConfigError(std::string("faults.") + name + " must be in [0, 1]");
  }
}

}  // namespace

bool FaultParams::any() const {
  return mc_breakdown_mtbf > 0.0 || mc_permanent_at > 0.0 ||
         node_burst_mtbf > 0.0 || phase_noise_mtbf > 0.0 ||
         escalation_drop_prob > 0.0 || escalation_delay_prob > 0.0 ||
         battery_drift_mtbf > 0.0;
}

void FaultParams::validate() const {
  require_rate("mc_breakdown_mtbf", mc_breakdown_mtbf);
  require_rate("mc_permanent_at", mc_permanent_at);
  require_rate("node_burst_mtbf", node_burst_mtbf);
  require_rate("phase_noise_mtbf", phase_noise_mtbf);
  require_rate("phase_noise_duration", phase_noise_duration);
  require_rate("escalation_delay_max", escalation_delay_max);
  require_rate("battery_drift_mtbf", battery_drift_mtbf);
  require_rate("battery_drift_duration", battery_drift_duration);
  if (mc_breakdown_mtbf > 0.0 && mc_repair_mean <= 0.0) {
    throw ConfigError("faults.mc_repair_mean must be > 0 when breakdowns "
                      "are enabled");
  }
  if (mc_budget_loss < 0.0 || mc_budget_loss > 1.0) {
    throw ConfigError("faults.mc_budget_loss must be in [0, 1]");
  }
  if (node_burst_mtbf > 0.0 && node_burst_size == 0) {
    throw ConfigError("faults.node_burst_size must be >= 1");
  }
  if (phase_noise_mtbf > 0.0 && phase_noise_scale < 1.0) {
    throw ConfigError("faults.phase_noise_scale must be >= 1");
  }
  if (phase_noise_mtbf > 0.0 && phase_noise_duration <= 0.0) {
    throw ConfigError("faults.phase_noise_duration must be > 0 when phase "
                      "noise is enabled");
  }
  require_prob("escalation_drop_prob", escalation_drop_prob);
  require_prob("escalation_delay_prob", escalation_delay_prob);
  if (escalation_drop_prob + escalation_delay_prob > 1.0) {
    throw ConfigError(
        "faults.escalation_drop_prob + escalation_delay_prob must be <= 1");
  }
  if (escalation_delay_prob > 0.0 && escalation_delay_max <= 0.0) {
    throw ConfigError("faults.escalation_delay_max must be > 0 when delays "
                      "are enabled");
  }
  if (battery_drift_mtbf > 0.0 && battery_drift_power < 0.0) {
    throw ConfigError("faults.battery_drift_power must be >= 0");
  }
}

std::vector<Outage> FaultPlan::normalize_outages(std::vector<Outage> raw,
                                                 Seconds permanent_at) {
  // Stable sort by (start, end): equal starts keep draw order, so the result
  // is a deterministic function of the raw list alone.
  std::stable_sort(raw.begin(), raw.end(),
                   [](const Outage& a, const Outage& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.end < b.end;
                   });
  std::vector<Outage> merged;
  for (const Outage& o : raw) {
    if (o.end <= o.start) continue;  // degenerate draw
    if (!merged.empty() && o.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, o.end);
    } else {
      merged.push_back(o);
    }
  }
  if (permanent_at > 0.0) {
    // Everything from `permanent_at` on is one infinite outage; stochastic
    // intervals overlapping it fold in.
    while (!merged.empty() && merged.back().end >= permanent_at) {
      if (merged.back().start < permanent_at) {
        permanent_at = merged.back().start;
      }
      merged.pop_back();
    }
    merged.push_back({permanent_at, kInf});
  }
  return merged;
}

FaultPlan FaultPlan::compile(const FaultParams& params, Seconds horizon,
                             std::size_t node_count, Rng rng) {
  params.validate();
  WRSN_REQUIRE(horizon > 0.0, "fault plan horizon must be > 0");
  (void)node_count;  // victims are drawn at execution time (must be alive)

  FaultPlan plan;
  plan.mc_budget_loss = params.mc_budget_loss;
  plan.escalation_drop_prob = params.escalation_drop_prob;
  plan.escalation_delay_prob = params.escalation_delay_prob;
  plan.escalation_delay_max = params.escalation_delay_max;

  if (params.mc_breakdown_mtbf > 0.0) {
    Rng mc_rng = rng.fork("mc");
    std::vector<Outage> raw;
    Seconds t = mc_rng.exponential(1.0 / params.mc_breakdown_mtbf);
    while (t < horizon) {
      const Seconds repair = mc_rng.exponential(1.0 / params.mc_repair_mean);
      raw.push_back({t, t + repair});
      t = t + repair + mc_rng.exponential(1.0 / params.mc_breakdown_mtbf);
    }
    plan.mc_outages = normalize_outages(std::move(raw),
                                        params.mc_permanent_at);
  } else if (params.mc_permanent_at > 0.0) {
    plan.mc_outages = normalize_outages({}, params.mc_permanent_at);
  }

  if (params.node_burst_mtbf > 0.0) {
    Rng burst_rng = rng.fork("burst");
    Seconds t = burst_rng.exponential(1.0 / params.node_burst_mtbf);
    while (t < horizon) {
      FaultEvent ev;
      ev.time = t;
      ev.kind = FaultKind::NodeBurst;
      ev.count = params.node_burst_size;
      plan.events.push_back(ev);
      t += burst_rng.exponential(1.0 / params.node_burst_mtbf);
    }
  }

  if (params.phase_noise_mtbf > 0.0) {
    Rng phase_rng = rng.fork("phase");
    Seconds t = phase_rng.exponential(1.0 / params.phase_noise_mtbf);
    while (t < horizon) {
      FaultEvent ev;
      ev.time = t;
      ev.kind = FaultKind::PhaseNoise;
      ev.duration = params.phase_noise_duration;
      ev.magnitude = params.phase_noise_scale;
      plan.events.push_back(ev);
      // Windows never overlap: the next draw starts after this one ends.
      t += params.phase_noise_duration +
           phase_rng.exponential(1.0 / params.phase_noise_mtbf);
    }
  }

  if (params.battery_drift_mtbf > 0.0) {
    Rng drift_rng = rng.fork("drift");
    Seconds t = drift_rng.exponential(1.0 / params.battery_drift_mtbf);
    while (t < horizon) {
      FaultEvent ev;
      ev.time = t;
      ev.kind = FaultKind::BatteryDrift;
      ev.duration = params.battery_drift_duration;
      ev.magnitude = params.battery_drift_power;
      plan.events.push_back(ev);
      t += drift_rng.exponential(1.0 / params.battery_drift_mtbf);
    }
  }

  // Per-kind streams are independent, so the merged schedule is stable-sorted
  // by time with kind as a deterministic tie-break (ties have measure zero
  // for continuous draws, but degenerate hand-built params must not depend
  // on sort internals).
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });
  return plan;
}

}  // namespace wrsn::fault
