// Executes a compiled FaultPlan against a live world.
//
// The injector schedules every planned fault into the world's event kernel
// and routes it at fire time: node faults go straight to the World's fault
// API, MC faults and phase noise go through `FaultHooks` (std::function
// hooks wired by the scenario layer to whichever charging agent drives the
// vehicle — the fault library never depends on mc/ or core/).  A fault with
// no installed hook or no live victim is ABSORBED, not an error: the same
// plan must replay cleanly against any scenario.
//
// Determinism: victim selection and escalation-tampering decisions draw from
// per-concern child streams forked from the injector's rng at construction.
// Fault fire times come from the compiled plan (identical across world
// update modes), and within one concern the draws happen in fire order —
// which the world-equivalence guarantees keep identical across modes — so a
// faulted Fast trace still matches its Reference twin.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "sim/world.hpp"

namespace wrsn::fault {

/// Agent-side fault surface; unset hooks absorb their faults.
struct FaultHooks {
  /// MC component fault: halt, abort any session, lose `budget_loss`
  /// (fraction of battery capacity).  `permanent` means no repair follows.
  std::function<void(double budget_loss, bool permanent)> mc_breakdown;
  /// Repair complete: the vehicle resumes planning.
  std::function<void()> mc_repair;
  /// Phase-calibration degradation: set the spoofing phase jitter to
  /// `scale` times its configured baseline (1.0 restores it).
  std::function<void(double scale)> phase_noise;
  /// Fired once, right after a PERMANENT mc_breakdown was delivered — the
  /// fleet layer wires this to its territory-handoff redistribution.  Unlike
  /// the hooks above, leaving it unset is not an absorbed fault: the
  /// breakdown itself was already delivered and tallied, and single-charger
  /// scenarios have nobody to hand off to.
  std::function<void()> mc_permanent_loss;
};

/// Schedules a FaultPlan into the world's simulator and tallies outcomes.
class FaultInjector {
 public:
  FaultInjector(sim::World& world, FaultPlan plan, FaultHooks hooks, Rng rng);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Flushes the fault tallies to the installed obs registry in one shot.
  ~FaultInjector();

  /// Schedules every planned fault (times clamped to >= now) and installs
  /// the escalation interceptor when tampering is enabled.  Call exactly
  /// once, before the simulation runs.
  void arm();

  const FaultStats& stats() const { return stats_; }

 private:
  void fire_event(const FaultEvent& ev);
  void fire_node_burst(std::size_t count);
  void fire_battery_drift(Watts power, Seconds duration);
  sim::EscalationDecision intercept_escalation(net::NodeId id);

  sim::World& world_;
  FaultPlan plan_;
  FaultHooks hooks_;
  Rng burst_rng_;
  Rng drift_rng_;
  Rng escalation_rng_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace wrsn::fault
