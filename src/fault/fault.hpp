// Deterministic fault-injection: typed fault schedules compiled from a
// forked RNG.
//
// A `FaultPlan` is the full fault schedule of one trial — MC breakdown/repair
// intervals, node hardware-failure bursts, spoofing phase-calibration noise
// windows, battery self-discharge drifts — compiled up front by
// `FaultPlan::compile` as a pure function of (FaultParams, horizon,
// node_count, rng).  The plan is mode-independent: the Fast and Reference
// world updaters receive bit-identical fault schedules, so the
// world-equivalence and fuzzer differential oracles hold under faults too.
// Execution (scheduling the plan into a live simulator and routing each
// fault to the world or an agent hook) lives in fault/injector.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace wrsn::fault {

/// Tunable fault model, loaded from the `[faults]` INI section.  Every rate
/// is a mean time between faults [s]; 0 disables that fault kind.
struct FaultParams {
  /// MC component faults: the vehicle halts on the spot, aborts any session,
  /// and loses `mc_budget_loss` of its battery capacity (the breakdown and
  /// the tow/diagnosis drain its travel budget).
  Seconds mc_breakdown_mtbf = 0.0;
  /// Mean repair time after a breakdown [s].
  Seconds mc_repair_mean = 3'600.0;
  /// Battery-capacity fraction lost per breakdown.
  double mc_budget_loss = 0.10;
  /// When > 0, the MC dies permanently at this absolute time (no repair) —
  /// the liveness-oracle scenario.  Overlaps with stochastic breakdown
  /// intervals are normalized away deterministically.
  Seconds mc_permanent_at = 0.0;

  /// Correlated hardware-failure bursts (a bad batch, a lightning strike):
  /// each burst bricks `node_burst_size` randomly chosen alive nodes at once.
  Seconds node_burst_mtbf = 0.0;
  std::size_t node_burst_size = 2;

  /// Spoofing phase-calibration degradation windows: the attacker's carrier
  /// phase jitter is multiplied by `phase_noise_scale` for
  /// `phase_noise_duration` seconds (thermal drift, oscillator aging).
  /// Benign runs absorb these (no emitter to degrade).
  Seconds phase_noise_mtbf = 0.0;
  Seconds phase_noise_duration = 1'800.0;
  double phase_noise_scale = 25.0;

  /// Emergency-escalation tampering at the base-station uplink: each
  /// escalation report is independently dropped with `escalation_drop_prob`,
  /// else delayed once by uniform(0, escalation_delay_max] with
  /// `escalation_delay_prob`.
  double escalation_drop_prob = 0.0;
  double escalation_delay_prob = 0.0;
  Seconds escalation_delay_max = 1'800.0;

  /// Battery self-discharge drift: a randomly chosen node gains an unmetered
  /// parasitic drain of `battery_drift_power` watts (aging cell, moisture
  /// leakage).  The node's own SoC estimate does not see it — believed and
  /// true level diverge, exactly the gap the attack exploits.  Duration 0
  /// means permanent.
  Seconds battery_drift_mtbf = 0.0;
  Watts battery_drift_power = 5e-3;
  Seconds battery_drift_duration = 0.0;

  /// True when any fault kind is enabled (compiling a plan can do work).
  bool any() const;
  /// Throws ConfigError on out-of-range values (negative rates/durations,
  /// probabilities outside [0, 1], drop + delay > 1, ...).
  void validate() const;
};

/// Non-breakdown fault kinds scheduled as point events.
enum class FaultKind : std::uint8_t {
  NodeBurst,     ///< brick `count` random alive nodes
  PhaseNoise,    ///< scale spoofing phase jitter for `duration` seconds
  BatteryDrift,  ///< parasitic drain of `magnitude` W on one random node
};

/// One scheduled point fault.
struct FaultEvent {
  Seconds time = 0.0;
  FaultKind kind = FaultKind::NodeBurst;
  Seconds duration = 0.0;    ///< PhaseNoise / BatteryDrift window length
  std::size_t count = 0;     ///< NodeBurst victim count
  double magnitude = 0.0;    ///< PhaseNoise scale / BatteryDrift watts
};

/// One MC outage; `end` is +inf for a permanent breakdown.
struct Outage {
  Seconds start = 0.0;
  Seconds end = 0.0;
};

/// Per-kind injection tallies; `absorbed` counts faults that found no
/// target (no hook installed, victim already dead, duplicate victim).
struct FaultStats {
  std::uint64_t mc_breakdowns = 0;
  std::uint64_t mc_repairs = 0;
  std::uint64_t node_burst_kills = 0;
  std::uint64_t phase_noise_windows = 0;
  std::uint64_t escalations_dropped = 0;
  std::uint64_t escalations_delayed = 0;
  std::uint64_t drift_nodes = 0;
  std::uint64_t absorbed = 0;
  /// Permanent MC losses delivered to a fleet handoff hook.  Not a fault of
  /// its own (the breakdown is already tallied above), so it is excluded
  /// from injected_total(); an absent handoff hook is NOT absorbed either —
  /// single-charger scenarios simply have nobody to hand off to.
  std::uint64_t mc_handoffs = 0;

  std::uint64_t injected_total() const {
    return mc_breakdowns + mc_repairs + node_burst_kills +
           phase_noise_windows + escalations_dropped + escalations_delayed +
           drift_nodes;
  }
};

/// A compiled fault schedule: MC outages plus point events, both ascending
/// in time.  Pure data — replayable, comparable, mode-independent.
struct FaultPlan {
  std::vector<Outage> mc_outages;
  /// Battery-capacity fraction the MC loses per breakdown.
  double mc_budget_loss = 0.0;
  std::vector<FaultEvent> events;
  /// Escalation tampering is decided per escalation at execution time (the
  /// schedule cannot know when escalations fire); the compiled plan only
  /// carries the probabilities.
  double escalation_drop_prob = 0.0;
  double escalation_delay_prob = 0.0;
  Seconds escalation_delay_max = 0.0;

  bool empty() const {
    return mc_outages.empty() && events.empty() &&
           escalation_drop_prob <= 0.0 && escalation_delay_prob <= 0.0;
  }

  /// Compiles the schedule for one trial.  Pure function of the arguments:
  /// per-kind child streams are forked from `rng` by label, so adding draws
  /// to one fault kind never perturbs another.  Throws ConfigError when
  /// `params` fails validation.
  static FaultPlan compile(const FaultParams& params, Seconds horizon,
                           std::size_t node_count, Rng rng);

  /// Merges overlapping/adjacent raw outages into disjoint ascending
  /// intervals, then applies the permanent breakdown: intervals are
  /// truncated at `permanent_at` (> 0) and a final infinite outage is
  /// appended.  Deterministic: stable order, no RNG.  Exposed for tests.
  static std::vector<Outage> normalize_outages(std::vector<Outage> raw,
                                               Seconds permanent_at);
};

}  // namespace wrsn::fault
