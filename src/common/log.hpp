// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, so the logger is a
// plain global with a level filter; benches set the level to Warn to keep
// output machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace wrsn {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Returns the current global level.
LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Streams a single log record at `level`; usage: wrsn::log(LogLevel::Info) << ...;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

inline LogLine log(LogLevel level) { return LogLine(level); }

/// True when records at `level` would be emitted under the current filter.
inline bool log_enabled(LogLevel level) { return level >= log_level(); }

}  // namespace wrsn

/// Hot-path logging: checks the level BEFORE constructing the LogLine (and
/// its ostringstream member), so filtered records cost one branch.  `level`
/// is a bare LogLevel enumerator: WRSN_LOG(Debug) << "node " << id;
/// The if/else shape keeps the macro safe inside unbraced if statements.
#define WRSN_LOG(level)                                   \
  if (!::wrsn::log_enabled(::wrsn::LogLevel::level)) {    \
  } else                                                  \
    ::wrsn::log(::wrsn::LogLevel::level)
