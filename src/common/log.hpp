// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, so the logger is a
// plain global with a level filter; benches set the level to Warn to keep
// output machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace wrsn {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Returns the current global level.
LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Streams a single log record at `level`; usage: wrsn::log(LogLevel::Info) << ...;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

inline LogLine log(LogLevel level) { return LogLine(level); }

}  // namespace wrsn
