// Invariant and precondition checking for the WRSN library.
//
// WRSN_REQUIRE: precondition on public API input; throws wrsn::PreconditionError
//   so callers (including tests) can observe misuse without aborting.
// WRSN_ASSERT:  internal invariant; aborts in all build types because a failed
//   invariant means the library itself is wrong and no recovery is meaningful.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace wrsn {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a configuration struct fails validation.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when the simulation reaches an unrecoverable inconsistent state
/// caused by caller-provided scenario data (not by a library bug).
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void assert_failed(const char* expr, const char* file,
                                       int line) {
  std::fprintf(stderr, "%s:%d: internal invariant `%s` violated\n", file, line,
               expr);
  std::abort();
}

}  // namespace detail
}  // namespace wrsn

#define WRSN_REQUIRE(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::wrsn::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                \
  } while (false)

#define WRSN_ASSERT(expr)                                         \
  do {                                                            \
    if (!(expr)) {                                                \
      ::wrsn::detail::assert_failed(#expr, __FILE__, __LINE__);    \
    }                                                             \
  } while (false)
