// FNV-1a folding, shared by the fuzzer's trace digests (analysis/fuzz.cpp)
// and the service layer's scenario digests (svc/digest.cpp).  Both sides pin
// digests in committed tests, so the constants and the byte order are part
// of the repo's compatibility surface: changing them invalidates every
// recorded campaign digest.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace wrsn {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

class Fnv {
 public:
  void mix_bytes(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= kFnvPrime;
    }
  }
  void mix(std::uint64_t value) noexcept { mix_bytes(&value, sizeof(value)); }
  void mix(double value) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  }
  void mix(const std::string& s) noexcept { mix_bytes(s.data(), s.size()); }
  std::uint64_t hash() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

}  // namespace wrsn
