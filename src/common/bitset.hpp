// Word-packed dynamic bitmap for node masks.
//
// The hot simulation paths (routing rebuilds/repairs, load aggregation,
// topology scans, fleet partitioning) all filter by a per-node alive mask.
// std::vector<bool> packs bits but hides them behind proxy references and
// gives no way to count or iterate set bits a word at a time; this Bitmap
// stores 64-bit words directly so membership tests compile to a shift+mask,
// population counts to one popcount per word, and set-bit iteration to a
// countr_zero loop that skips empty words in one compare each.
//
// Conventions shared with the old vector<bool> masks:
//   * an EMPTY bitmap passed as an alive mask means "all alive" (callers use
//     Bitmap::empty(), mirroring the old alive.empty() convention);
//   * sized bitmaps are indexed by NodeId; out-of-range access is the
//     caller's bug (checked by WRSN_ASSERT in debug builds).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace wrsn {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t n, bool value = false) { assign(n, value); }

  /// Resizes to `n` bits, all set to `value` (capacity is reused).
  void assign(std::size_t n, bool value) {
    size_ = n;
    words_.assign(word_count(n), value ? ~std::uint64_t{0} : 0);
    trim();
  }

  void clear() {
    size_ = 0;
    words_.clear();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t i) const {
    WRSN_ASSERT(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  bool operator[](std::size_t i) const { return test(i); }

  void set(std::size_t i) {
    WRSN_ASSERT(i < size_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) {
    WRSN_ASSERT(i < size_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void set(std::size_t i, bool value) {
    if (value) {
      set(i);
    } else {
      reset(i);
    }
  }

  /// Number of set bits; one popcount per word.
  std::size_t count() const {
    std::size_t total = 0;
    for (const std::uint64_t w : words_) {
      total += static_cast<std::size_t>(std::popcount(w));
    }
    return total;
  }

  bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Calls `fn(index)` for every set bit in ascending order.  Empty words
  /// cost one compare; within a word each set bit costs one countr_zero.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(w));
        fn((wi << 6) + bit);
        w &= w - 1;  // clear the lowest set bit
      }
    }
  }

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  static std::size_t word_count(std::size_t n) { return (n + 63) >> 6; }

  /// Clears the bits above size_ in the last word so count() and == stay
  /// honest after assign(n, true).
  void trim() {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace wrsn
