#include "common/rng.hpp"

#include "common/check.hpp"

namespace wrsn {
namespace {

// 64-bit FNV-1a over a byte range; used to mix fork labels into child seeds.
std::uint64_t fnv1a(std::string_view bytes, std::uint64_t basis) {
  std::uint64_t hash = basis;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// SplitMix64 finalizer; whitens correlated seeds before feeding mt19937_64.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

Rng Rng::fork(std::string_view label) const {
  return Rng(splitmix64(fnv1a(label, seed_ ^ 0xcbf29ce484222325ULL)));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  WRSN_REQUIRE(lo <= hi, "uniform bounds inverted");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  WRSN_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double sigma) {
  WRSN_REQUIRE(sigma >= 0.0, "negative sigma");
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

double Rng::exponential(double rate) {
  WRSN_REQUIRE(rate > 0.0, "exponential rate must be positive");
  return std::exponential_distribution<double>(rate)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

}  // namespace wrsn
