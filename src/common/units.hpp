// Physical unit aliases and constants used across the library.
//
// The library uses SI units everywhere (seconds, meters, joules, watts,
// radians).  Aliases exist so signatures document which unit is meant; they
// are plain doubles and carry no checking.
#pragma once

#include <cmath>
#include <numbers>

namespace wrsn {

using Seconds = double;
using Meters = double;
using MetersPerSecond = double;
using Joules = double;
using Watts = double;
using Radians = double;
using Hertz = double;

namespace constants {

/// Speed of light in vacuum [m/s]; used to derive wavelength from frequency.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Default WPT carrier frequency [Hz] (915 MHz ISM band, the band used by
/// Powercast-class chargers the WRSN literature builds testbeds with).
inline constexpr Hertz kDefaultCarrierHz = 915e6;

/// Wavelength of the default carrier [m] (~0.3276 m at 915 MHz).
inline constexpr Meters kDefaultWavelength = kSpeedOfLight / kDefaultCarrierHz;

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

}  // namespace constants

/// Converts dBm to watts.
inline Watts dbm_to_watts(double dbm) { return std::pow(10.0, dbm / 10.0) / 1000.0; }

/// Converts watts to dBm.  Requires `watts > 0`.
inline double watts_to_dbm(Watts watts) { return 10.0 * std::log10(watts * 1000.0); }

}  // namespace wrsn
