// Deterministic random number generation.
//
// Every stochastic component of the simulator draws from an Rng handed to it
// by its owner, and sibling components receive independent streams derived
// from a parent seed via `fork(label)`.  This makes every experiment
// reproducible from a single top-level seed while keeping the streams of
// unrelated components decoupled (adding a draw in one module does not
// perturb another module's sequence).
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace wrsn {

/// Deterministic, forkable pseudo-random stream (xoshiro-seeded mt19937_64).
class Rng {
 public:
  /// Constructs a stream from a raw 64-bit seed.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream.  The same (parent seed, label)
  /// pair always yields the same child, and distinct labels yield streams
  /// that are statistically independent for simulation purposes.
  Rng fork(std::string_view label) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal draw with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential draw with the given rate (rate > 0).
  double exponential(double rate);

  /// Bernoulli draw with probability `p` of true (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Raw engine access for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace wrsn
