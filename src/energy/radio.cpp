#include "energy/radio.hpp"

#include "common/check.hpp"

namespace wrsn::energy {

void RadioParams::validate() const {
  if (e_elec <= 0.0) throw ConfigError("e_elec must be > 0");
  if (e_amp <= 0.0) throw ConfigError("e_amp must be > 0");
}

RadioModel::RadioModel(const RadioParams& params) : params_(params) {
  params_.validate();
}

Joules RadioModel::tx_energy(double bits, Meters distance) const {
  WRSN_REQUIRE(bits >= 0.0, "negative bit count");
  WRSN_REQUIRE(distance >= 0.0, "negative distance");
  return params_.e_elec * bits + params_.e_amp * bits * distance * distance;
}

Joules RadioModel::rx_energy(double bits) const {
  WRSN_REQUIRE(bits >= 0.0, "negative bit count");
  return params_.e_elec * bits;
}

Watts RadioModel::tx_power(double bps, Meters distance) const {
  return tx_energy(bps, distance);
}

Watts RadioModel::rx_power(double bps) const { return rx_energy(bps); }

}  // namespace wrsn::energy
