// Sensor node battery model with clamped charge/discharge semantics.
#pragma once

#include "common/units.hpp"

namespace wrsn::energy {

/// A rechargeable battery.  Levels are clamped to [0, capacity]; the battery
/// never goes negative and never overcharges.
class Battery {
 public:
  /// Constructs a battery with `capacity` joules, initially at `level`
  /// (defaults to full).  Requires capacity > 0 and 0 <= level <= capacity.
  explicit Battery(Joules capacity);
  Battery(Joules capacity, Joules level);

  /// Adds `amount` joules (>= 0); returns the energy actually stored
  /// (may be less than `amount` if the battery tops out).
  Joules charge(Joules amount);

  /// Removes `amount` joules (>= 0); returns the energy actually drawn
  /// (may be less than `amount` if the battery empties).
  Joules discharge(Joules amount);

  Joules level() const { return level_; }
  Joules capacity() const { return capacity_; }
  Joules headroom() const { return capacity_ - level_; }
  double fraction() const { return level_ / capacity_; }
  bool depleted() const { return level_ <= 0.0; }

  /// Time to drain from the current level at constant `drain` watts;
  /// +infinity if drain <= 0.
  Seconds time_to_empty(Watts drain) const;

  /// Time until the level crosses below `threshold` at constant `drain`
  /// watts; 0 if already below, +infinity if drain <= 0.
  Seconds time_to_threshold(Joules threshold, Watts drain) const;

 private:
  Joules capacity_;
  Joules level_;
};

}  // namespace wrsn::energy
