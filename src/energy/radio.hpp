// First-order radio energy model (Heinzelman et al.), the standard model the
// WRSN literature computes node drain rates with.
//
//   E_tx(k bits, d) = e_elec * k + e_amp * k * d^2
//   E_rx(k bits)    = e_elec * k
#pragma once

#include "common/units.hpp"

namespace wrsn::energy {

/// Parameters of the first-order radio model.
struct RadioParams {
  /// Electronics energy per bit [J/bit] (50 nJ/bit).
  double e_elec = 50e-9;

  /// Amplifier energy per bit per m^2 [J/bit/m^2] (100 pJ/bit/m^2).
  double e_amp = 100e-12;

  void validate() const;
};

/// Stateless first-order radio energy model.
class RadioModel {
 public:
  RadioModel() : RadioModel(RadioParams{}) {}
  explicit RadioModel(const RadioParams& params);

  /// Energy to transmit `bits` over `distance` meters.
  Joules tx_energy(double bits, Meters distance) const;

  /// Energy to receive `bits`.
  Joules rx_energy(double bits) const;

  /// Steady-state transmit power at `bps` bits/s over `distance` meters.
  Watts tx_power(double bps, Meters distance) const;

  /// Steady-state receive power at `bps` bits/s.
  Watts rx_power(double bps) const;

  const RadioParams& params() const { return params_; }

 private:
  RadioParams params_;
};

}  // namespace wrsn::energy
