#include "energy/battery.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace wrsn::energy {

Battery::Battery(Joules capacity) : Battery(capacity, capacity) {}

Battery::Battery(Joules capacity, Joules level)
    : capacity_(capacity), level_(level) {
  WRSN_REQUIRE(capacity > 0.0, "battery capacity must be positive");
  WRSN_REQUIRE(level >= 0.0 && level <= capacity,
               "initial level outside [0, capacity]");
}

Joules Battery::charge(Joules amount) {
  WRSN_REQUIRE(amount >= 0.0, "cannot charge a negative amount");
  const Joules stored = std::min(amount, headroom());
  level_ += stored;
  return stored;
}

Joules Battery::discharge(Joules amount) {
  WRSN_REQUIRE(amount >= 0.0, "cannot discharge a negative amount");
  const Joules drawn = std::min(amount, level_);
  level_ -= drawn;
  return drawn;
}

Seconds Battery::time_to_empty(Watts drain) const {
  if (drain <= 0.0) return std::numeric_limits<double>::infinity();
  return level_ / drain;
}

Seconds Battery::time_to_threshold(Joules threshold, Watts drain) const {
  if (level_ <= threshold) return 0.0;
  if (drain <= 0.0) return std::numeric_limits<double>::infinity();
  return (level_ - threshold) / drain;
}

}  // namespace wrsn::energy
