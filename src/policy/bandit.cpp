#include "policy/bandit.hpp"

#include <cmath>

#include "common/check.hpp"

namespace wrsn::policy {

Bandit::Bandit(BanditKind kind, std::size_t arm_count, Rng rng,
               double epsilon, double ucb_c)
    : kind_(kind),
      epsilon_(epsilon),
      ucb_c_(ucb_c),
      rng_(std::move(rng)),
      arms_(arm_count) {
  WRSN_REQUIRE(arm_count >= 1, "bandit needs at least one arm");
  WRSN_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0, "epsilon must be in [0, 1]");
  WRSN_REQUIRE(ucb_c >= 0.0, "ucb_c must be >= 0");
}

double Bandit::mean(std::size_t arm) const {
  const Arm& a = arms_[arm];
  return a.pulls == 0 ? 0.0 : a.reward_sum / double(a.pulls);
}

std::size_t Bandit::best_mean_arm() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < arms_.size(); ++i) {
    if (mean(i) > mean(best)) best = i;  // ties keep the lower index
  }
  return best;
}

std::size_t Bandit::select() {
  // Untried arms first, lowest index first — both variants sweep every arm
  // once before estimates mean anything.
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (arms_[i].pulls == 0) return i;
  }
  switch (kind_) {
    case BanditKind::EpsilonGreedy:
      if (rng_.bernoulli(epsilon_)) {
        return std::size_t(
            rng_.uniform_int(0, std::int64_t(arms_.size()) - 1));
      }
      return best_mean_arm();
    case BanditKind::Ucb: {
      const double log_total = std::log(double(total_pulls_));
      std::size_t best = 0;
      double best_value = 0.0;
      for (std::size_t i = 0; i < arms_.size(); ++i) {
        const double value =
            mean(i) + ucb_c_ * std::sqrt(log_total / double(arms_[i].pulls));
        if (i == 0 || value > best_value) {  // ties keep the lower index
          best = i;
          best_value = value;
        }
      }
      return best;
    }
  }
  return 0;
}

void Bandit::update(std::size_t arm, double reward) {
  WRSN_REQUIRE(arm < arms_.size(), "bandit arm out of range");
  arms_[arm].pulls += 1;
  arms_[arm].reward_sum += reward;
  total_pulls_ += 1;
}

}  // namespace wrsn::policy
