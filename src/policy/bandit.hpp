// Seeded multi-armed bandit cores for the adaptive attacker/defender
// policies (DESIGN.md §15).
//
// Determinism contract: a Bandit is a pure function of (kind, arm count,
// knobs, the Rng handed to the constructor, and the select/update call
// sequence).  Ties always break to the LOWEST arm index, and UCB consumes
// no randomness at all, so two bandits fed identical reward sequences from
// identically-forked streams replay identical arm sequences — the property
// the tournament's bit-identical-at-any-WRSN_THREADS guarantee rests on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace wrsn::policy {

enum class BanditKind {
  EpsilonGreedy,  ///< explore with probability epsilon, else greedy on mean
  Ucb,            ///< UCB1: mean + c * sqrt(ln(total) / pulls), no randomness
};

class Bandit {
 public:
  /// `rng` is consumed by epsilon-greedy exploration draws only; fork it
  /// from the owning agent's stream with a dedicated label so adding a
  /// bandit never perturbs sibling streams.
  Bandit(BanditKind kind, std::size_t arm_count, Rng rng,
         double epsilon = 0.1, double ucb_c = 1.4142135623730951);

  /// Picks the next arm.  Untried arms are always preferred (lowest index
  /// first), so the first `arm_count` selections sweep every arm once.
  std::size_t select();

  /// Records the observed reward for one pull of `arm`.
  void update(std::size_t arm, double reward);

  std::size_t arm_count() const { return arms_.size(); }
  std::uint64_t pulls(std::size_t arm) const { return arms_[arm].pulls; }
  double mean(std::size_t arm) const;
  std::uint64_t total_pulls() const { return total_pulls_; }

 private:
  struct Arm {
    std::uint64_t pulls = 0;
    double reward_sum = 0.0;
  };

  std::size_t best_mean_arm() const;

  BanditKind kind_;
  double epsilon_;
  double ucb_c_;
  Rng rng_;
  std::vector<Arm> arms_;
  std::uint64_t total_pulls_ = 0;
};

}  // namespace wrsn::policy
