// The adaptive-policy seam (DESIGN.md §15).
//
// Both sides of the arms race are pluggable, deterministic policies:
//
//   * The ATTACKER's spoof scheduling — when a key-node session is spoofed
//     vs. served genuinely for cover, and how much energy a PartialCancel
//     session leaks — is an `AttackPolicy` the orchestrator consults at
//     every key-node session start.  `AttackPolicyKind::Static` reproduces
//     the pre-policy pacing arithmetic bit-for-bit (it consumes no
//     randomness); the bandit kinds re-select a pacing-aggressiveness arm
//     once per epoch from a stream forked off the agent's own Rng.
//   * The DEFENDER's threshold re-tuning is carried by `DefenderPolicyParams`
//     and realized as adaptive detectors (detect/adaptive.hpp) that
//     recalibrate their death-rate / audit-budget / gain knobs per trace
//     window.  `DefenderPolicyKind::Static` deploys the unchanged PR-4
//     suites.
//
// Determinism rules: policies draw randomness only from the Rng handed to
// them at construction (forked with a dedicated label, so the static path
// is bit-identical to the pre-policy code), and they observe only
// quantities the modeled actor could observe — the attacker sees base-
// station death logs and its own kill ledger, never detector internals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "policy/bandit.hpp"

namespace wrsn::policy {

enum class AttackPolicyKind {
  Static,         ///< the fixed pace_limit/pace_window arithmetic of PR 1-9
  EpsilonGreedy,  ///< bandit over pacing-aggressiveness arms, eps-greedy
  Ucb,            ///< bandit over pacing-aggressiveness arms, UCB1
};

enum class DefenderPolicyKind {
  Static,    ///< deployment-calibrated thresholds, fixed for the mission
  Adaptive,  ///< thresholds re-tuned per trace window (detect/adaptive.hpp)
};

/// `[policy.*]` attacker half.  Only read in Attack mode.
struct AttackPolicyParams {
  AttackPolicyKind kind = AttackPolicyKind::Static;
  /// Exploration probability (eps-greedy arms only).
  double epsilon = 0.1;
  /// UCB exploration constant (UCB arm only).
  double ucb_c = 1.4142135623730951;
  /// The bandit re-selects its arm once per epoch [s].
  Seconds epoch = 21'600.0;
  /// Reward = kills this epoch - risk_weight * max(0, deaths - risk_budget):
  /// the attacker's observable proxy for stealth, counting every death the
  /// base-station log shows against the death-rate tolerance it assumes the
  /// defender calibrated.
  double risk_weight = 2.0;
  std::size_t risk_budget = 3;

  void validate() const;
};

/// `[policy.*]` defender half.
struct DefenderPolicyParams {
  DefenderPolicyKind kind = DefenderPolicyKind::Static;
  /// Threshold re-tuning cadence [s]: adaptive detectors close an
  /// estimation window this often and recalibrate from everything before it.
  Seconds window = 21'600.0;
  /// Sigma multiplier of the recalibrated bounds (the static calibration
  /// uses 3).
  double quantile = 3.0;
  /// Completed windows required before the estimate overrides the
  /// deployment prior.
  std::size_t min_samples = 2;

  void validate() const;
};

/// The `[policy.*]` INI section: one deterministic adaptive policy per side.
struct PolicyParams {
  AttackPolicyParams attacker;
  DefenderPolicyParams defender;

  void validate() const {
    attacker.validate();
    defender.validate();
  }
};

/// Everything the attacker's scheduling policy may observe at one key-node
/// spoof decision.  All fields derive from the attacker's own ledger and
/// the base-station logs it operates under — no defender internals.
struct SpoofQuery {
  Seconds now = 0.0;
  /// Predicted death time of the target if spoofed this session.
  Seconds death_at = 0.0;
  /// Deaths (scheduled kills + observed background deaths) in the worst
  /// pace_window interval this kill would join, the new kill included.
  std::size_t window_deaths = 0;
  /// Deferring this kill would push it past the campaign deadline.
  bool last_chance = false;
  std::size_t keys_killed = 0;
  std::size_t keys_total = 0;
};

struct SpoofDecision {
  bool spoof = false;
  /// PartialCancel only: fraction of the expected session gain really
  /// delivered.  The static policy always returns the configured
  /// `attack.partial_leak_ratio`.
  double leak_ratio = 0.0;
};

class AttackPolicy {
 public:
  virtual ~AttackPolicy() = default;
  virtual std::string_view name() const = 0;
  /// Decides spoof-now vs. genuine-cover for one key-node session start.
  virtual SpoofDecision decide(const SpoofQuery& query) = 0;
  /// Feedback: a death reached the base-station log at `at`; `own_kill`
  /// marks deaths this attacker scheduled itself.
  virtual void observe_death(Seconds at, bool own_kill) = 0;
};

/// Wraps the PR 1-9 pacing arithmetic: spoof unless the kill would exceed
/// `pace_limit` deaths in a pace window (pace_limit 0 disables pacing), with
/// the last-chance campaign override.  Consumes no randomness.
class StaticAttackPolicy final : public AttackPolicy {
 public:
  StaticAttackPolicy(std::size_t pace_limit, double leak_ratio)
      : pace_limit_(pace_limit), leak_ratio_(leak_ratio) {}
  std::string_view name() const override { return "static"; }
  SpoofDecision decide(const SpoofQuery& query) override;
  void observe_death(Seconds, bool) override {}

 private:
  std::size_t pace_limit_;
  double leak_ratio_;
};

/// Bandit over pacing-aggressiveness arms.  Each arm is an (effective pace
/// limit, PartialCancel leak ratio) pair spanning cautious (one kill below
/// the configured limit, higher leak) through unpaced (no limit, minimal
/// leak); the arm is re-selected once per epoch and rewarded with the
/// attacker-observable stealth proxy (see AttackPolicyParams::risk_weight).
/// True detection is post-hoc and unobservable in-mission, so the proxy —
/// visible deaths vs. the assumed defender tolerance — is what a real
/// attacker could actually compute from the logs it operates.
class BanditAttackPolicy final : public AttackPolicy {
 public:
  static constexpr std::size_t kArmCount = 5;

  BanditAttackPolicy(const AttackPolicyParams& params, Rng rng,
                     std::size_t base_pace_limit, double base_leak_ratio);
  std::string_view name() const override {
    return kind_ == AttackPolicyKind::Ucb ? "ucb" : "eps-greedy";
  }
  SpoofDecision decide(const SpoofQuery& query) override;
  void observe_death(Seconds at, bool own_kill) override;

  std::size_t current_arm() const { return current_arm_; }
  std::uint64_t epochs_closed() const { return epochs_closed_; }

 private:
  struct Arm {
    std::size_t pace_limit;  ///< SIZE_MAX = unpaced
    double leak_ratio;
  };

  /// Closes every epoch that ended at or before `now`, feeding the reward
  /// back and re-selecting the arm.  Driven by decision and death times, so
  /// the arm sequence is a pure function of the observed event stream.
  void roll_epoch(Seconds now);

  AttackPolicyKind kind_;
  double risk_weight_;
  std::size_t risk_budget_;
  Seconds epoch_length_;
  Bandit bandit_;
  Arm arms_[kArmCount];
  std::size_t current_arm_ = 0;
  Seconds epoch_end_;
  std::uint64_t epoch_kills_ = 0;
  std::uint64_t epoch_deaths_ = 0;
  std::uint64_t epochs_closed_ = 0;
};

/// Builds the configured attack policy.  `rng` is consumed by bandit kinds
/// only; fork it with a dedicated label (the orchestrator uses "policy") so
/// the static path never perturbs existing streams.
std::unique_ptr<AttackPolicy> make_attack_policy(
    const AttackPolicyParams& params, Rng rng, std::size_t base_pace_limit,
    double base_leak_ratio);

/// Stable labels, used by config parsing, digests stay numeric.
std::string_view attack_policy_label(AttackPolicyKind kind);
std::string_view defender_policy_label(DefenderPolicyKind kind);
/// Inverse of the labels; throws ConfigError on unknown names.
AttackPolicyKind parse_attack_policy(const std::string& name);
DefenderPolicyKind parse_defender_policy(const std::string& name);

}  // namespace wrsn::policy
