#include "policy/policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace wrsn::policy {

void AttackPolicyParams::validate() const {
  if (epsilon < 0.0 || epsilon > 1.0) {
    throw ConfigError("policy.epsilon must be in [0, 1]");
  }
  if (ucb_c < 0.0 || !std::isfinite(ucb_c)) {
    throw ConfigError("policy.ucb_c must be finite and >= 0");
  }
  if (epoch <= 0.0 || !std::isfinite(epoch)) {
    throw ConfigError("policy.epoch must be finite and > 0");
  }
  if (risk_weight < 0.0 || !std::isfinite(risk_weight)) {
    throw ConfigError("policy.risk_weight must be finite and >= 0");
  }
}

void DefenderPolicyParams::validate() const {
  if (window <= 0.0 || !std::isfinite(window)) {
    throw ConfigError("policy.defender_window must be finite and > 0");
  }
  if (quantile < 0.0 || !std::isfinite(quantile)) {
    throw ConfigError("policy.defender_quantile must be finite and >= 0");
  }
  if (min_samples == 0) {
    throw ConfigError("policy.defender_min_samples must be >= 1");
  }
}

SpoofDecision StaticAttackPolicy::decide(const SpoofQuery& query) {
  const bool paced_out =
      pace_limit_ != 0 && query.window_deaths > pace_limit_;
  return {.spoof = !paced_out || query.last_chance,
          .leak_ratio = leak_ratio_};
}

BanditAttackPolicy::BanditAttackPolicy(const AttackPolicyParams& params,
                                       Rng rng, std::size_t base_pace_limit,
                                       double base_leak_ratio)
    : kind_(params.kind),
      risk_weight_(params.risk_weight),
      risk_budget_(params.risk_budget),
      epoch_length_(params.epoch),
      bandit_(params.kind == AttackPolicyKind::Ucb ? BanditKind::Ucb
                                                   : BanditKind::EpsilonGreedy,
              kArmCount, std::move(rng), params.epsilon, params.ucb_c),
      epoch_end_(params.epoch) {
  params.validate();
  // Arms span cautious -> unpaced around the configured pacing.  A cautious
  // arm leaks more per PartialCancel session (slower kill, safer audits);
  // aggressive arms leak less (faster kill, riskier).  A disabled configured
  // limit (0) anchors the ladder at the deployed-detector default instead.
  const std::size_t base = base_pace_limit != 0 ? base_pace_limit : 3;
  const auto leak = [&](double scale) {
    return std::clamp(base_leak_ratio * scale, 0.0, 0.9);
  };
  arms_[0] = {base > 1 ? base - 1 : 1, leak(1.25)};
  arms_[1] = {base, leak(1.0)};
  arms_[2] = {base + 1, leak(1.0)};
  arms_[3] = {base + 2, leak(0.85)};
  arms_[4] = {SIZE_MAX, leak(0.7)};
  current_arm_ = bandit_.select();
}

void BanditAttackPolicy::roll_epoch(Seconds now) {
  while (now >= epoch_end_) {
    const double overshoot =
        double(epoch_deaths_) - double(risk_budget_);
    const double reward =
        double(epoch_kills_) - risk_weight_ * std::max(0.0, overshoot);
    bandit_.update(current_arm_, reward);
    current_arm_ = bandit_.select();
    epoch_kills_ = 0;
    epoch_deaths_ = 0;
    epoch_end_ += epoch_length_;
    ++epochs_closed_;
  }
}

SpoofDecision BanditAttackPolicy::decide(const SpoofQuery& query) {
  roll_epoch(query.now);
  const Arm& arm = arms_[current_arm_];
  const bool unpaced = arm.pace_limit == SIZE_MAX;
  const bool spoof = unpaced || query.window_deaths <= arm.pace_limit ||
                     query.last_chance;
  if (spoof) ++epoch_kills_;
  return {.spoof = spoof, .leak_ratio = arm.leak_ratio};
}

void BanditAttackPolicy::observe_death(Seconds at, bool own_kill) {
  roll_epoch(at);
  ++epoch_deaths_;
  (void)own_kill;  // kills are tallied at decision time, deaths here
}

std::unique_ptr<AttackPolicy> make_attack_policy(
    const AttackPolicyParams& params, Rng rng, std::size_t base_pace_limit,
    double base_leak_ratio) {
  params.validate();
  if (params.kind == AttackPolicyKind::Static) {
    return std::make_unique<StaticAttackPolicy>(base_pace_limit,
                                                base_leak_ratio);
  }
  return std::make_unique<BanditAttackPolicy>(
      params, std::move(rng), base_pace_limit, base_leak_ratio);
}

std::string_view attack_policy_label(AttackPolicyKind kind) {
  switch (kind) {
    case AttackPolicyKind::Static: return "static";
    case AttackPolicyKind::EpsilonGreedy: return "eps-greedy";
    case AttackPolicyKind::Ucb: return "ucb";
  }
  return "static";
}

std::string_view defender_policy_label(DefenderPolicyKind kind) {
  switch (kind) {
    case DefenderPolicyKind::Static: return "static";
    case DefenderPolicyKind::Adaptive: return "adaptive";
  }
  return "static";
}

AttackPolicyKind parse_attack_policy(const std::string& name) {
  if (name == "static") return AttackPolicyKind::Static;
  if (name == "eps-greedy") return AttackPolicyKind::EpsilonGreedy;
  if (name == "ucb") return AttackPolicyKind::Ucb;
  throw ConfigError("unknown attack policy '" + name +
                    "' (expected static|eps-greedy|ucb)");
}

DefenderPolicyKind parse_defender_policy(const std::string& name) {
  if (name == "static") return DefenderPolicyKind::Static;
  if (name == "adaptive") return DefenderPolicyKind::Adaptive;
  throw ConfigError("unknown defender policy '" + name +
                    "' (expected static|adaptive)");
}

}  // namespace wrsn::policy
