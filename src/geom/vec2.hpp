// 2-D vector math for node positions and charger motion.
#pragma once

#include <cmath>
#include <ostream>

#include "common/units.hpp"

namespace wrsn::geom {

/// Planar point/vector in meters.
struct Vec2 {
  Meters x = 0.0;
  Meters y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(Meters x_in, Meters y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(Vec2 rhs) const { return {x + rhs.x, y + rhs.y}; }
  constexpr Vec2 operator-(Vec2 rhs) const { return {x - rhs.x, y - rhs.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 rhs) {
    x += rhs.x;
    y += rhs.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 rhs) const { return x * rhs.x + y * rhs.y; }
  double norm() const { return std::hypot(x, y); }
  constexpr double norm_sq() const { return x * x + y * y; }

  /// Unit vector in this direction; returns (0,0) for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Euclidean distance between two points.
inline Meters distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Linear interpolation from `a` to `b`; t is clamped to [0, 1].
Vec2 lerp(Vec2 a, Vec2 b, double t);

/// Axis-aligned rectangle, used as the deployment region.
struct Rect {
  Vec2 lo;  ///< minimum-coordinate corner
  Vec2 hi;  ///< maximum-coordinate corner

  constexpr Meters width() const { return hi.x - lo.x; }
  constexpr Meters height() const { return hi.y - lo.y; }
  constexpr Vec2 center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }
  constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
};

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace wrsn::geom
