#include "geom/vec2.hpp"

#include <algorithm>

namespace wrsn::geom {

Vec2 lerp(Vec2 a, Vec2 b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  return a + (b - a) * t;
}

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

}  // namespace wrsn::geom
