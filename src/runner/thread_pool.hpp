// Fixed-size thread pool for experiment sharding.
//
// Deliberately minimal: one shared FIFO queue, a fixed worker count chosen at
// construction, no work stealing and no dynamic resizing.  Determinism of the
// experiment runner built on top does not depend on scheduling order — every
// task owns its inputs (including its own forked Rng) and writes to its own
// output slot — so the pool only has to be correct, not clever.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wrsn::runner {

/// Fixed set of worker threads draining one shared task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; a count of 1 still uses a worker thread
  /// so task semantics are identical at every size).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue, waits for in-flight tasks, and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not throw; an escaping exception
  /// terminates (same contract as a detached thread).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wrsn::runner
