// Deterministic parallel experiment runner.
//
// `run_trials` shards independent scenario trials across a fixed thread pool
// and returns their results **in submission order**.  Determinism does not
// depend on the thread count or on scheduling:
//
//   * each trial receives its own `Rng`, forked from the base seed by trial
//     index (`Rng::fork("<label>/<index>")`), so a trial's random stream is a
//     pure function of (base seed, index) — never of which worker ran it or
//     what ran before it on that worker;
//   * each trial writes only to its own pre-allocated result slot, so
//     aggregation order equals submission order.
//
// Consequently the output is bit-identical at 1, 2, or N threads (there is a
// regression test asserting exactly that), and benches are free to read
// WRSN_THREADS from the environment without changing their numbers.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "runner/thread_pool.hpp"

namespace wrsn::runner {

/// Worker count for experiment sharding: `WRSN_THREADS` when set to a
/// positive integer, else `std::thread::hardware_concurrency()` (min 1).
std::size_t configured_threads();

/// Wall-time accounting for one `run_trials` call.
struct RunStats {
  std::size_t trials = 0;
  std::size_t threads = 1;
  double wall_seconds = 0.0;
  /// Per-trial execution time, indexed by submission order.
  std::vector<double> trial_seconds;

  double trial_seconds_total() const;
  /// Trials completed per wall-clock second.
  double throughput() const;
  /// Aggregate CPU time over wall time; ~threads when sharding scales.
  double speedup() const;
};

struct TrialOptions {
  /// 0 selects `configured_threads()`.
  std::size_t threads = 0;
  /// Base seed the per-trial Rng streams are forked from.
  std::uint64_t seed = 1;
  /// Fork label prefix; distinct labels give unrelated stream families.
  std::string_view label = "trial";
  /// When set, every trial runs with its own shard `MetricRegistry`
  /// installed as the thread-local current registry, and the shards are
  /// merged into `*metrics` in submission order after the last trial — so
  /// the merged registry is bit-identical at any thread count.  When null,
  /// trials run with *no* registry installed (never the caller's), keeping
  /// trial behavior independent of the calling thread's obs state.
  obs::MetricRegistry* metrics = nullptr;
};

namespace detail {

std::size_t resolve_threads(std::size_t requested);

inline double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace detail

/// Runs `fn(config, rng)` for every config, sharded over the pool; returns
/// the results in submission (config) order.  The first trial exception, in
/// submission order, is rethrown after all trials finish.
template <typename Config, typename Fn>
auto run_trials(std::span<const Config> configs, Fn&& fn,
                const TrialOptions& options = {}, RunStats* stats = nullptr) {
  using Result = std::invoke_result_t<Fn&, const Config&, Rng&>;
  static_assert(!std::is_void_v<Result>,
                "trial functions must return their result");

  const std::size_t count = configs.size();
  const std::size_t threads = detail::resolve_threads(options.threads);
  const Rng base(options.seed);
  const std::string label(options.label);

  std::vector<std::optional<Result>> slots(count);
  std::vector<std::exception_ptr> errors(count);
  std::vector<double> trial_seconds(count, 0.0);
  std::vector<obs::MetricRegistry> shards(
      options.metrics != nullptr ? count : 0);
  const auto started = std::chrono::steady_clock::now();

  const auto run_one = [&](std::size_t index) {
    const auto trial_started = std::chrono::steady_clock::now();
    obs::ScopedRegistry obs_scope(shards.empty() ? nullptr : &shards[index]);
    try {
      Rng rng = base.fork(label + "/" + std::to_string(index));
      slots[index].emplace(fn(configs[index], rng));
    } catch (...) {
      errors[index] = std::current_exception();
    }
    trial_seconds[index] = detail::elapsed_seconds(trial_started);
  };

  if (threads == 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) run_one(i);
  } else {
    ThreadPool pool(std::min(threads, count));
    for (std::size_t i = 0; i < count; ++i) {
      pool.submit([&run_one, i] { run_one(i); });
    }
    pool.wait_idle();
  }

  if (options.metrics != nullptr) {
    // Submission-order fold: bit-identical regardless of worker scheduling.
    for (std::size_t i = 0; i < count; ++i) {
      options.metrics->merge(shards[i]);
    }
    options.metrics->add(obs::Metric::kRunnerTrials, double(count));
    for (const double seconds : trial_seconds) {
      options.metrics->observe(obs::Metric::kRunnerTrialNs, seconds * 1e9);
    }
  }
  if (stats != nullptr) {
    stats->trials = count;
    stats->threads = threads;
    stats->wall_seconds = detail::elapsed_seconds(started);
    stats->trial_seconds = std::move(trial_seconds);
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }

  std::vector<Result> results;
  results.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WRSN_ASSERT(slots[i].has_value());
    results.push_back(std::move(*slots[i]));
  }
  return results;
}

/// Index-based convenience: runs `fn(index, rng)` for indices [0, count).
template <typename Fn>
auto run_trials(std::size_t count, Fn&& fn, const TrialOptions& options = {},
                RunStats* stats = nullptr) {
  std::vector<std::size_t> indices(count);
  for (std::size_t i = 0; i < count; ++i) indices[i] = i;
  return run_trials(
      std::span<const std::size_t>(indices),
      [&fn](const std::size_t& index, Rng& rng) { return fn(index, rng); },
      options, stats);
}

}  // namespace wrsn::runner
