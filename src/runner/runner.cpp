#include "runner/runner.hpp"

#include <cstdlib>
#include <thread>

namespace wrsn::runner {

std::size_t configured_threads() {
  if (const char* env = std::getenv("WRSN_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

double RunStats::trial_seconds_total() const {
  double total = 0.0;
  for (const double s : trial_seconds) total += s;
  return total;
}

double RunStats::throughput() const {
  return wall_seconds > 0.0 ? double(trials) / wall_seconds : 0.0;
}

double RunStats::speedup() const {
  return wall_seconds > 0.0 ? trial_seconds_total() / wall_seconds : 0.0;
}

namespace detail {

std::size_t resolve_threads(std::size_t requested) {
  return requested > 0 ? requested : configured_threads();
}

}  // namespace detail

}  // namespace wrsn::runner
