#include "runner/thread_pool.hpp"

#include "common/check.hpp"

namespace wrsn::runner {

ThreadPool::ThreadPool(std::size_t threads) {
  WRSN_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  WRSN_REQUIRE(static_cast<bool>(task), "null task");
  {
    std::unique_lock lock(mutex_);
    WRSN_REQUIRE(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace wrsn::runner
